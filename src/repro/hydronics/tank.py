"""Cold-water storage tanks.

Each module has its own tank: 18 degC for radiant cooling, 8 degC for
the airbox dehumidification coils (paper Fig. 2).  The tank is a mixed
thermal mass held near its setpoint by its chiller; warm return water
raises the tank temperature, and the chiller works it back down.  The
chiller load the tank reports is exactly what the paper's power meters
integrate.
"""

from __future__ import annotations

from repro.hydronics.chiller import CarnotFractionChiller
from repro.hydronics.water import WATER_CP, WATER_DENSITY


class ColdWaterTank:
    """A stirred tank of chilled water with a dead-band chiller loop."""

    def __init__(self, name: str, chiller: CarnotFractionChiller,
                 volume_l: float = 150.0, setpoint_c: float = 18.0,
                 deadband_k: float = 0.15,
                 ambient_ua_w_per_k: float = 1.5) -> None:
        if volume_l <= 0:
            raise ValueError(f"tank {name!r}: volume must be positive")
        self.name = name
        self.chiller = chiller
        self.volume_l = volume_l
        self.setpoint_c = setpoint_c
        self.deadband_k = deadband_k
        self.ambient_ua_w_per_k = ambient_ua_w_per_k
        self.temp_c = setpoint_c
        self.initial_temp_c = self.temp_c
        self.heat_returned_j = 0.0
        # Signed ledgers closing the tank's first-law balance exactly:
        #   C * (temp - initial) == energy_in + ambient_gain - heat_moved
        # where heat_moved is the chiller's meter.  `heat_returned_j`
        # keeps its historical positive-only meaning (chiller load).
        self.energy_in_j = 0.0
        self.ambient_gain_j = 0.0
        self._chilling = False

    @property
    def thermal_mass_j_per_k(self) -> float:
        return self.volume_l * 1e-3 * WATER_DENSITY * WATER_CP

    def draw(self) -> float:
        """Temperature of water drawn from the tank (T_supp)."""
        return self.temp_c

    def telemetry_snapshot(self) -> dict:
        """Snapshot for the observability collector (JSON-safe)."""
        return {
            "temp_c": self.temp_c,
            "setpoint_c": self.setpoint_c,
            "energy_residual_j": self.energy_balance_residual_j(),
            "heat_returned_j": self.heat_returned_j,
            "chilling": self._chilling,
        }

    def energy_balance_residual_j(self) -> float:
        """First-law residual: stored minus (in + ambient - chilled).

        Exactly zero up to float rounding for any sequence of
        ``accept_return``/``step`` calls — the conservation invariant
        the fault-campaign tests assert (a crashed node can starve the
        control loop, never create or destroy energy in the water).
        """
        stored = self.thermal_mass_j_per_k * (self.temp_c
                                              - self.initial_temp_c)
        return stored - (self.energy_in_j + self.ambient_gain_j
                         - self.chiller.heat_moved_j)

    def accept_return(self, flow_lps: float, return_temp_c: float,
                      dt: float) -> None:
        """Return ``flow_lps`` of water at ``return_temp_c`` for ``dt`` s.

        The returning stream displaces tank water, warming the mixed
        volume; the heat it carries is logged as load eventually served
        by the chiller.
        """
        if flow_lps < 0 or dt < 0:
            raise ValueError("flow and dt must be non-negative")
        if flow_lps == 0 or dt == 0:
            return
        mass = flow_lps * 1e-3 * WATER_DENSITY * dt
        heat_j = mass * WATER_CP * (return_temp_c - self.temp_c)
        self.temp_c += heat_j / self.thermal_mass_j_per_k
        self.energy_in_j += heat_j
        if heat_j > 0:
            self.heat_returned_j += heat_j

    def step(self, dt: float, ambient_temp_c: float,
             reject_temp_c: float) -> None:
        """Advance tank thermal state and run the chiller hysteresis loop."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        gain_w = self.ambient_ua_w_per_k * (ambient_temp_c - self.temp_c)
        self.temp_c += gain_w * dt / self.thermal_mass_j_per_k
        self.ambient_gain_j += gain_w * dt

        # Hysteretic chiller control around the setpoint.
        if self.temp_c > self.setpoint_c + self.deadband_k:
            self._chilling = True
        elif self.temp_c < self.setpoint_c - self.deadband_k:
            self._chilling = False

        if self._chilling:
            load_w = self.chiller.capacity_w
            # Don't overshoot below the setpoint within this step.
            excess_k = self.temp_c - (self.setpoint_c - self.deadband_k)
            max_removable = excess_k * self.thermal_mass_j_per_k / dt if dt else 0.0
            load_w = min(load_w, max(0.0, max_removable))
            self.chiller.integrate(dt, load_w, reject_temp_c)
            self.temp_c -= load_w * dt / self.thermal_mass_j_per_k
        else:
            self.chiller.integrate(dt, 0.0, reject_temp_c)
