"""Hydronic substrate: the water side of BubbleZERO.

Chillers, cold-water tanks, DC pumps, the supply/recycle mixing loop and
the radiant ceiling panels (paper Fig. 3).  Everything the radiant
cooling module actuates lives here.
"""

from repro.hydronics.water import WATER_CP, WATER_DENSITY, water_heat_flux
from repro.hydronics.pump import DCPump, PumpCurve
from repro.hydronics.mixing import MixingJunction, MixResult
from repro.hydronics.chiller import CarnotFractionChiller
from repro.hydronics.heatpump import (
    CarnotFractionHeatPump,
    WarmWaterTank,
    carnot_heating_cop,
)
from repro.hydronics.tank import ColdWaterTank
from repro.hydronics.panel import RadiantPanel, PanelResult

__all__ = [
    "WATER_CP",
    "WATER_DENSITY",
    "water_heat_flux",
    "DCPump",
    "PumpCurve",
    "MixingJunction",
    "MixResult",
    "CarnotFractionChiller",
    "CarnotFractionHeatPump",
    "WarmWaterTank",
    "carnot_heating_cop",
    "ColdWaterTank",
    "RadiantPanel",
    "PanelResult",
]
