"""Heat pumps and warm-water storage: low-exergy *heating*.

The exergy argument is symmetric: the paper's §VI notes that "water
based radiation has been explored for heating purpose [23]" — the same
ceiling panels, run with barely-warm water (~30 degC) from a heat pump,
heat a room far more efficiently than 55 degC radiators or resistive
heaters, because heating COP is bounded by Carnot's T_hot/(T_hot - T_cold)
and shrinks as the supply temperature rises.

This module provides the heating-side substrate mirroring the chiller
and cold tank: a Carnot-fraction heat pump and a warm-water tank with a
hysteresis loop.
"""

from __future__ import annotations

from repro.physics.exergy import ExergyError, celsius_to_kelvin
from repro.hydronics.water import WATER_CP, WATER_DENSITY


def carnot_heating_cop(hot_temp_c: float, cold_temp_c: float) -> float:
    """Ideal heating COP: T_h / (T_h - T_c), temperatures in Celsius.

    >>> round(carnot_heating_cop(30.0, 5.0), 2)
    12.13
    """
    hot_k = celsius_to_kelvin(hot_temp_c)
    cold_k = celsius_to_kelvin(cold_temp_c)
    if hot_k <= cold_k:
        raise ExergyError("supply temperature must exceed the source")
    return hot_k / (hot_k - cold_k)


class CarnotFractionHeatPump:
    """An air/water-source heat pump at a fixed fraction of Carnot."""

    def __init__(self, name: str, hot_setpoint_c: float,
                 second_law_fraction: float, parasitic_w: float = 8.0,
                 capacity_w: float = 3000.0) -> None:
        if not (0 < second_law_fraction < 1):
            raise ValueError(
                f"heat pump {name!r}: second-law fraction must be in (0, 1)")
        if capacity_w <= 0:
            raise ValueError(f"heat pump {name!r}: capacity must be positive")
        self.name = name
        self.hot_setpoint_c = hot_setpoint_c
        self.second_law_fraction = second_law_fraction
        self.parasitic_w = parasitic_w
        self.capacity_w = capacity_w
        self.energy_j = 0.0
        self.heat_delivered_j = 0.0

    def cop_at(self, source_temp_c: float) -> float:
        """Heating COP when drawing from a source at ``source_temp_c``."""
        ideal = carnot_heating_cop(self.hot_setpoint_c, source_temp_c)
        return max(1.0, self.second_law_fraction * ideal)

    def electrical_power_w(self, heating_load_w: float,
                           source_temp_c: float) -> float:
        if heating_load_w < 0:
            raise ValueError("heating load cannot be negative")
        load = min(heating_load_w, self.capacity_w)
        if load == 0:
            return self.parasitic_w
        return self.parasitic_w + load / self.cop_at(source_temp_c)

    def integrate(self, dt: float, heating_load_w: float,
                  source_temp_c: float) -> float:
        power = self.electrical_power_w(heating_load_w, source_temp_c)
        self.energy_j += power * dt
        self.heat_delivered_j += min(heating_load_w, self.capacity_w) * dt
        return power

    def measured_cop(self) -> float:
        if self.energy_j <= 0:
            raise RuntimeError(f"heat pump {self.name!r} has not run yet")
        return self.heat_delivered_j / self.energy_j


class WarmWaterTank:
    """A stirred warm-water tank held near setpoint by its heat pump."""

    def __init__(self, name: str, heat_pump: CarnotFractionHeatPump,
                 volume_l: float = 150.0, setpoint_c: float = 30.0,
                 deadband_k: float = 0.15,
                 ambient_ua_w_per_k: float = 1.5) -> None:
        if volume_l <= 0:
            raise ValueError(f"tank {name!r}: volume must be positive")
        self.name = name
        self.heat_pump = heat_pump
        self.volume_l = volume_l
        self.setpoint_c = setpoint_c
        self.deadband_k = deadband_k
        self.ambient_ua_w_per_k = ambient_ua_w_per_k
        self.temp_c = setpoint_c
        self._heating = False

    @property
    def thermal_mass_j_per_k(self) -> float:
        return self.volume_l * 1e-3 * WATER_DENSITY * WATER_CP

    def draw(self) -> float:
        return self.temp_c

    def accept_return(self, flow_lps: float, return_temp_c: float,
                      dt: float) -> None:
        """Cooler water returning from the panels lowers the tank."""
        if flow_lps < 0 or dt < 0:
            raise ValueError("flow and dt must be non-negative")
        if flow_lps == 0 or dt == 0:
            return
        mass = flow_lps * 1e-3 * WATER_DENSITY * dt
        heat_j = mass * WATER_CP * (return_temp_c - self.temp_c)
        self.temp_c += heat_j / self.thermal_mass_j_per_k

    def step(self, dt: float, ambient_temp_c: float,
             source_temp_c: float) -> None:
        """Advance the tank and run the heat-pump hysteresis loop."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        loss_w = self.ambient_ua_w_per_k * (self.temp_c - ambient_temp_c)
        self.temp_c -= loss_w * dt / self.thermal_mass_j_per_k

        if self.temp_c < self.setpoint_c - self.deadband_k:
            self._heating = True
        elif self.temp_c > self.setpoint_c + self.deadband_k:
            self._heating = False

        if self._heating:
            load_w = self.heat_pump.capacity_w
            deficit_k = (self.setpoint_c + self.deadband_k) - self.temp_c
            max_addable = (deficit_k * self.thermal_mass_j_per_k / dt
                           if dt else 0.0)
            load_w = min(load_w, max(0.0, max_addable))
            self.heat_pump.integrate(dt, load_w, source_temp_c)
            self.temp_c += load_w * dt / self.thermal_mass_j_per_k
        else:
            self.heat_pump.integrate(dt, 0.0, source_temp_c)
