"""The supply/recycle mixing junction (paper Fig. 3 and Fig. 4(a)).

A recycle pipe bridges the panel's return pipe back into its supply
pipe.  The supply pump draws cold water from the tank at T_supp; the
recycle pump redirects warm return water at T_rcyc; the junction mixes
the two streams adiabatically.  Controlling the two pump speeds sets
both the mixed temperature T_mix and the mixed flow F_mix — the two
control parameters of the radiant cooling module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hydronics.pump import DCPump
from repro.hydronics.water import mix_temperature


@dataclass(frozen=True)
class MixResult:
    """Outcome of one mixing computation."""

    flow_lps: float          # F_mix
    temp_c: float            # T_mix
    supply_flow_lps: float   # F_supp drawn from the tank
    recycle_flow_lps: float  # F_rcyc recirculated from the return pipe


class MixingJunction:
    """Adiabatic three-way junction fed by a supply and a recycle pump."""

    def __init__(self, supply_pump: DCPump, recycle_pump: DCPump) -> None:
        self.supply_pump = supply_pump
        self.recycle_pump = recycle_pump

    def mix(self, supply_temp_c: float, return_temp_c: float) -> MixResult:
        """Mix the two streams at the pumps' current flows.

        ``supply_temp_c`` is the tank water temperature (T_supp, 18 degC
        nominal); ``return_temp_c`` is the warm water coming back from
        the panel.  With both pumps stopped the junction reports zero
        flow at the supply temperature (no water moving).
        """
        f_supp = self.supply_pump.flow_lps
        f_rcyc = self.recycle_pump.flow_lps
        total = f_supp + f_rcyc
        if total <= 0:
            return MixResult(0.0, supply_temp_c, 0.0, 0.0)
        temp = mix_temperature(f_supp, supply_temp_c, f_rcyc, return_temp_c)
        return MixResult(total, temp, f_supp, f_rcyc)

    @staticmethod
    def flows_for_target(total_flow_lps: float, target_temp_c: float,
                         supply_temp_c: float, return_temp_c: float
                         ) -> "tuple[float, float]":
        """Solve the mixing equation for pump flows.

        Returns ``(supply_flow, recycle_flow)`` such that the mixture has
        ``total_flow_lps`` at ``target_temp_c``.  When the target is
        outside the [supply, return] temperature envelope it is clamped
        to the nearest achievable endpoint — matching the physical
        reality that mixing cannot extrapolate.
        """
        if total_flow_lps < 0:
            raise ValueError("total flow cannot be negative")
        if total_flow_lps == 0:
            return 0.0, 0.0
        lo = min(supply_temp_c, return_temp_c)
        hi = max(supply_temp_c, return_temp_c)
        target = min(max(target_temp_c, lo), hi)
        if abs(return_temp_c - supply_temp_c) < 1e-9:
            return total_flow_lps, 0.0
        recycle_fraction = ((target - supply_temp_c)
                            / (return_temp_c - supply_temp_c))
        recycle_fraction = min(max(recycle_fraction, 0.0), 1.0)
        f_rcyc = total_flow_lps * recycle_fraction
        return total_flow_lps - f_rcyc, f_rcyc
