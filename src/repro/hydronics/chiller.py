"""Carnot-fraction chiller model.

The paper's headline result — 18 degC chilled water buys a COP of 4.52
against 2.8 for a conventional 8 degC system — is a direct consequence
of the Carnot bound COP_ideal = T_c / (T_h - T_c).  We model each
chiller as a fixed fraction (the "second-law efficiency", eta_II) of
that bound plus a parasitic power floor for controls and refrigerant
pumping.  The eta_II values are calibrated per DESIGN.md §4 so that the
paper's measured operating points land on the paper's measured COPs; the
*ordering* of the machines is pure thermodynamics and holds for any
fraction.
"""

from __future__ import annotations

from repro.physics.exergy import carnot_cop_celsius


class CarnotFractionChiller:
    """A vapour-compression chiller at a fixed fraction of Carnot."""

    def __init__(self, name: str, cold_setpoint_c: float,
                 second_law_fraction: float, parasitic_w: float = 8.0,
                 capacity_w: float = 2500.0) -> None:
        if not (0 < second_law_fraction < 1):
            raise ValueError(
                f"chiller {name!r}: second-law fraction must be in (0, 1)")
        if capacity_w <= 0:
            raise ValueError(f"chiller {name!r}: capacity must be positive")
        self.name = name
        self.cold_setpoint_c = cold_setpoint_c
        self.second_law_fraction = second_law_fraction
        self.parasitic_w = parasitic_w
        self.capacity_w = capacity_w
        self.energy_j = 0.0
        self.heat_moved_j = 0.0

    def cop_at(self, reject_temp_c: float) -> float:
        """Thermodynamic COP (before parasitics) when rejecting heat at
        ``reject_temp_c`` — typically the outdoor temperature plus a
        condenser approach."""
        ideal = carnot_cop_celsius(self.cold_setpoint_c, reject_temp_c)
        return self.second_law_fraction * ideal

    def electrical_power_w(self, cooling_load_w: float,
                           reject_temp_c: float) -> float:
        """Electrical draw to move ``cooling_load_w`` of heat.

        Load is clamped to the machine's capacity; a zero load still
        draws the parasitic floor while the machine is enabled.
        """
        if cooling_load_w < 0:
            raise ValueError("cooling load cannot be negative")
        load = min(cooling_load_w, self.capacity_w)
        if load == 0:
            return self.parasitic_w
        return self.parasitic_w + load / self.cop_at(reject_temp_c)

    def integrate(self, dt: float, cooling_load_w: float,
                  reject_temp_c: float) -> float:
        """Run for ``dt`` seconds at the given load.

        Returns the electrical power drawn, and accumulates both the
        energy consumed and the heat moved, which the COP analysis reads
        back (paper §V-B installs power meters on exactly these
        machines).
        """
        power = self.electrical_power_w(cooling_load_w, reject_temp_c)
        self.energy_j += power * dt
        self.heat_moved_j += min(cooling_load_w, self.capacity_w) * dt
        return power

    def measured_cop(self) -> float:
        """Lifetime COP from the accumulated meters (heat / electricity)."""
        if self.energy_j <= 0:
            raise RuntimeError(f"chiller {self.name!r} has not run yet")
        return self.heat_moved_j / self.energy_j
