"""Water properties and heat-flux helpers.

The paper computes removed heat as P = c * F * (T_retn - T_supp) with c
"a constant related to the water thermal capacity and density"
(paper §V-B); that constant is rho * cp below.
"""

from __future__ import annotations

WATER_DENSITY = 998.0   # kg/m^3 at ~20 degC
WATER_CP = 4186.0       # J/kg/K


def mass_flow(volumetric_lps: float) -> float:
    """Litres-per-second to kg/s."""
    if volumetric_lps < 0:
        raise ValueError(f"flow cannot be negative: {volumetric_lps}")
    return volumetric_lps * 1e-3 * WATER_DENSITY


def water_heat_flux(flow_lps: float, temp_in_c: float,
                    temp_out_c: float) -> float:
    """Heat absorbed by a water stream, W.

    Positive when the water leaves warmer than it entered — i.e. the
    stream *removed* heat from its surroundings, which is the quantity
    the paper's COP numerator measures.
    """
    return mass_flow(flow_lps) * WATER_CP * (temp_out_c - temp_in_c)


def mix_temperature(flow_a_lps: float, temp_a_c: float,
                    flow_b_lps: float, temp_b_c: float) -> float:
    """Adiabatic mixing temperature of two water streams.

    >>> mix_temperature(1.0, 18.0, 1.0, 22.0)
    20.0
    """
    if flow_a_lps < 0 or flow_b_lps < 0:
        raise ValueError("flows cannot be negative")
    total = flow_a_lps + flow_b_lps
    if total <= 0:
        raise ValueError("cannot mix two zero-flow streams")
    return (flow_a_lps * temp_a_c + flow_b_lps * temp_b_c) / total
