"""DC circulation pumps (paper Fig. 3, item 3; Fig. 5(b)).

The deployment's pumps take a 0–5 V control signal from the Control-C-2
board's DAC and produce a roughly proportional flow.  We model a linear
pump curve with a dead band (small voltages don't overcome static head)
and an electrical power model (hydraulic work / efficiency + controller
standby), which feeds the COP accounting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PumpCurve:
    """Static voltage-to-flow characteristic.

    ``max_flow_lps`` is delivered at ``max_voltage``; below
    ``deadband_v`` the pump does not move water.
    """

    max_flow_lps: float = 0.20
    max_voltage: float = 5.0
    deadband_v: float = 0.3

    def flow_at(self, voltage: float) -> float:
        """Volumetric flow (L/s) produced at ``voltage``."""
        if voltage <= self.deadband_v:
            return 0.0
        voltage = min(voltage, self.max_voltage)
        span = self.max_voltage - self.deadband_v
        return self.max_flow_lps * (voltage - self.deadband_v) / span

    def voltage_for(self, flow_lps: float) -> float:
        """Inverse of :meth:`flow_at`, clamped to [0, max_voltage]."""
        if flow_lps <= 0:
            return 0.0
        flow_lps = min(flow_lps, self.max_flow_lps)
        span = self.max_voltage - self.deadband_v
        return self.deadband_v + span * flow_lps / self.max_flow_lps


class DCPump:
    """A voltage-controlled circulation pump with energy accounting."""

    def __init__(self, name: str, curve: PumpCurve = PumpCurve(),
                 rated_power_w: float = 12.0, standby_power_w: float = 0.4,
                 head_pa: float = 1.2e4, efficiency: float = 0.35) -> None:
        if not (0 < efficiency <= 1):
            raise ValueError(f"pump {name!r}: efficiency must be in (0, 1]")
        self.name = name
        self.curve = curve
        self.rated_power_w = rated_power_w
        self.standby_power_w = standby_power_w
        self.head_pa = head_pa
        self.efficiency = efficiency
        self._voltage = 0.0
        self.energy_j = 0.0

    @property
    def voltage(self) -> float:
        return self._voltage

    def set_voltage(self, voltage: float) -> None:
        """Apply the DAC output; clamped to the pump's valid range."""
        self._voltage = min(max(voltage, 0.0), self.curve.max_voltage)

    @property
    def flow_lps(self) -> float:
        """Current delivered flow, L/s."""
        return self.curve.flow_at(self._voltage)

    def electrical_power_w(self) -> float:
        """Instantaneous electrical draw, W.

        Hydraulic power is flow * head; dividing by the wire-to-water
        efficiency and capping at the rated power gives the electrical
        draw.  A stopped pump still draws its controller standby power.
        """
        flow_m3s = self.flow_lps * 1e-3
        if flow_m3s <= 0:
            return self.standby_power_w
        hydraulic = flow_m3s * self.head_pa
        return min(self.rated_power_w,
                   self.standby_power_w + hydraulic / self.efficiency)

    def integrate(self, dt: float) -> None:
        """Accumulate electrical energy over ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self.energy_j += self.electrical_power_w() * dt
