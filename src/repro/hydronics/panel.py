"""Radiant ceiling panels (paper §III-B).

Each of the two metal ceiling panels is a water-to-room heat exchanger.
We use the standard effectiveness-NTU model for a constant-wall-side
exchanger: with water mass flow m and conductance UA,

    effectiveness = 1 - exp(-UA / (m * cp))
    Q = effectiveness * m * cp * (T_room - T_water_in)

The panel surface temperature — the quantity the condensation constraint
guards (surface must stay above the local dew point) — is approximated
as the mean water temperature pulled toward the room by the surface film
resistance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hydronics.water import WATER_CP, mass_flow


@dataclass(frozen=True)
class PanelResult:
    """Outcome of one panel heat-exchange step."""

    heat_w: float            # heat absorbed from the room (>= 0 when cooling)
    return_temp_c: float     # water temperature leaving the panel
    surface_temp_c: float    # panel surface temperature (condensation check)
    effectiveness: float


class RadiantPanel:
    """One ceiling panel fed by the mixing junction."""

    def __init__(self, name: str, ua_w_per_k: float = 110.0,
                 area_m2: float = 12.0,
                 surface_film_fraction: float = 0.35) -> None:
        if ua_w_per_k <= 0:
            raise ValueError(f"panel {name!r}: UA must be positive")
        if not (0 <= surface_film_fraction <= 1):
            raise ValueError(
                f"panel {name!r}: film fraction must be within [0, 1]")
        self.name = name
        self.ua_w_per_k = ua_w_per_k
        self.area_m2 = area_m2
        self.surface_film_fraction = surface_film_fraction
        self.heat_absorbed_j = 0.0

    def exchange(self, flow_lps: float, water_in_c: float,
                 room_temp_c: float) -> PanelResult:
        """Compute the heat exchange at the given water flow and states.

        With zero flow the panel equilibrates with the room: no heat
        moves and the surface floats at room temperature (so a stopped
        panel can never condense).
        """
        if flow_lps < 0:
            raise ValueError("flow cannot be negative")
        if flow_lps == 0:
            return PanelResult(0.0, water_in_c, room_temp_c, 0.0)
        m_cp = mass_flow(flow_lps) * WATER_CP
        effectiveness = 1.0 - math.exp(-self.ua_w_per_k / m_cp)
        heat_w = effectiveness * m_cp * (room_temp_c - water_in_c)
        return_temp = water_in_c + heat_w / m_cp
        mean_water = 0.5 * (water_in_c + return_temp)
        surface = (mean_water
                   + self.surface_film_fraction * (room_temp_c - mean_water))
        return PanelResult(heat_w, return_temp, surface, effectiveness)

    def integrate(self, result: PanelResult, dt: float) -> None:
        """Accumulate absorbed heat for the COP meters."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if result.heat_w > 0:
            self.heat_absorbed_j += result.heat_w * dt
