"""Device energy accounting and battery lifetime projection.

The paper's power numbers (§IV-B): sampling costs 0.3 mW, transmitting
54 mW; with BT-ADPT averaging T_snd ~ 48 s a bt-device on two AA cells
lasts > 3.2 years, against 0.7 years at a fixed T_snd = 2 s.

We model a bt-device's draw as

    P = P_base + E_pkt / T_snd

with a base load (sensor sampling + MCU sleep) and a fixed energy cost
per transmission event (radio wake-up, CSMA, airtime at 54 mW).  The
profile constants are calibrated so the paper's two lifetime anchor
points are reproduced exactly (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_YEAR = 365.25 * 86400.0


@dataclass(frozen=True)
class PowerProfile:
    """Energy constants of one device class."""

    base_power_w: float          # sampling + sleep floor
    tx_energy_per_packet_j: float
    sample_power_w: float = 0.3e-3
    tx_power_w: float = 54e-3


# Calibrated TelosB profile: with a 27 kJ battery these constants give
# 0.7 years at T_snd = 2 s and 3.2 years at T_snd = 48 s — the paper's
# anchor points.
TELOSB_PROFILE = PowerProfile(
    base_power_w=0.225e-3,
    tx_energy_per_packet_j=2.0e-3,
)


@dataclass(frozen=True)
class BatteryModel:
    """An energy reservoir (2 x AA alkaline by default)."""

    capacity_j: float = 27_000.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("battery capacity must be positive")

    def lifetime_s(self, average_power_w: float) -> float:
        """Runtime at a constant average draw."""
        if average_power_w <= 0:
            raise ValueError("average power must be positive")
        return self.capacity_j / average_power_w

    def lifetime_years(self, average_power_w: float) -> float:
        return self.lifetime_s(average_power_w) / SECONDS_PER_YEAR


class EnergyLedger:
    """Integrates one device's consumption during a simulation."""

    def __init__(self, name: str, profile: PowerProfile = TELOSB_PROFILE,
                 battery: BatteryModel = BatteryModel(),
                 start_time: float = 0.0) -> None:
        self.name = name
        self.profile = profile
        self.battery = battery
        self.packets_sent = 0
        self.tx_energy_j = 0.0
        # Base load accrues from the device's power-on instant, which is
        # the simulation's (non-zero) start time, not t = 0.
        self._base_accounted_until = float(start_time)
        self.base_energy_j = 0.0

    def charge_transmission(self) -> None:
        """Account one transmission event."""
        self.packets_sent += 1
        self.tx_energy_j += self.profile.tx_energy_per_packet_j

    def accrue_base(self, now: float) -> None:
        """Accrue base-load energy up to simulation time ``now``."""
        if now < self._base_accounted_until:
            raise ValueError("time went backwards in energy accounting")
        dt = now - self._base_accounted_until
        self.base_energy_j += self.profile.base_power_w * dt
        self._base_accounted_until = now

    @property
    def total_energy_j(self) -> float:
        return self.tx_energy_j + self.base_energy_j

    def average_power_w(self, elapsed_s: float) -> float:
        """Mean draw over ``elapsed_s`` of simulated operation."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.total_energy_j / elapsed_s

    def projected_lifetime_years(self, elapsed_s: float) -> float:
        """Battery life if the observed duty cycle continued forever."""
        return self.battery.lifetime_years(self.average_power_w(elapsed_s))


def lifetime_years_at_period(send_period_s: float,
                             profile: PowerProfile = TELOSB_PROFILE,
                             battery: BatteryModel = BatteryModel()) -> float:
    """Closed-form lifetime at a steady send period (paper's arithmetic).

    >>> round(lifetime_years_at_period(2.0), 1)
    0.7
    >>> round(lifetime_years_at_period(48.0), 1)
    3.2
    """
    if send_period_s <= 0:
        raise ValueError("send period must be positive")
    power = profile.base_power_w + profile.tx_energy_per_packet_j / send_period_s
    return battery.lifetime_years(power)
