"""Histogram-based variance clustering and threshold selection.

This is the constant-memory mechanism of paper §IV-B: instead of storing
every historical variance value, a bt-device keeps

* ``var_min`` / ``var_max`` — the extreme variances observed so far,
* ``N`` counters ``U_i`` — how many variances rounded into slot ``i``,
  where slot ``i`` (1-based) has centre
  ``c_i = var_min + (i - 0.5) * delta`` and
  ``delta = (var_max - var_min) / N``.

Algorithm 1 enumerates the N-1 candidate boundaries j; the first
cluster is slots 1..j with centre ``cc1 = mean(c_1..c_j)`` and the
second is slots j+1..N with centre ``cc2 = mean(c_{j+1}..c_N)`` (plain
means of slot centres, exactly as the paper defines them); the total
intra-cluster distance is ``sum_i U_i * |c_i - cc|`` and the optimal
boundary yields the threshold ``lambda = var_min + j* * delta``.

``ExactClusterOracle`` is the reference the paper evaluates accuracy
against: it stores *all* variance values and clusters them exactly, so
the histogram's adaptation decisions can be scored against the optimal
ones (paper Fig. 12(a), Fig. 13).

``histogram_ram_bytes`` / ``histogram_cpu_seconds`` model the MSP430
resource cost the paper reports in Fig. 12(b,c); see DESIGN.md for the
calibration (130 bytes and 1600 ms at N = 60).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class VarianceHistogram:
    """Constant-memory approximation of the variance distribution."""

    def __init__(self, n_slots: int) -> None:
        if n_slots < 2:
            raise ValueError(f"need at least 2 slots, got {n_slots}")
        self.n_slots = int(n_slots)
        self.var_min: Optional[float] = None
        self.var_max: Optional[float] = None
        self.counts: List[int] = [0] * self.n_slots
        self.range_reforms = 0  # how often var_min/var_max moved

    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        return sum(self.counts)

    @property
    def delta(self) -> float:
        """Slot step length; zero while the range is degenerate."""
        if self.var_min is None or self.var_max is None:
            return 0.0
        return (self.var_max - self.var_min) / self.n_slots

    def slot_center(self, index: int) -> float:
        """Centre of 1-based slot ``index``."""
        if not (1 <= index <= self.n_slots):
            raise IndexError(f"slot index {index} out of 1..{self.n_slots}")
        if self.var_min is None:
            raise RuntimeError("histogram has no samples yet")
        return self.var_min + (index - 0.5) * self.delta

    def slot_of(self, variance: float) -> int:
        """1-based slot a variance value rounds into."""
        if self.var_min is None or self.delta == 0.0:
            return 1
        idx = int((variance - self.var_min) / self.delta) + 1
        return min(max(idx, 1), self.n_slots)

    # ------------------------------------------------------------------
    def add(self, variance: float) -> None:
        """Record one variance observation.

        Growing the observed range re-rounds the existing histogram onto
        the new slot grid ("if either var_max or var_min is changed,
        histogram values will be rounded to N new slot centers").
        """
        if variance < 0:
            raise ValueError(f"variance cannot be negative: {variance}")
        if self.var_min is None:
            self.var_min = self.var_max = variance
            self.counts[0] += 1
            return
        if variance < self.var_min or variance > self.var_max:
            new_min = min(self.var_min, variance)
            new_max = max(self.var_max, variance)
            self._reform(new_min, new_max)
        self.counts[self.slot_of(variance) - 1] += 1

    def _reform(self, new_min: float, new_max: float) -> None:
        """Re-round all counted mass onto the new slot grid."""
        old_centers = ([self.slot_center(i) for i in range(1, self.n_slots + 1)]
                       if self.delta > 0 else
                       [self.var_min] * self.n_slots)
        old_counts = list(self.counts)
        self.var_min, self.var_max = new_min, new_max
        self.counts = [0] * self.n_slots
        self.range_reforms += 1
        for center, count in zip(old_centers, old_counts):
            if count:
                self.counts[self.slot_of(center) - 1] += count

    def reset_counts(self) -> None:
        """Periodic cleanup "to eliminate approximation errors cumulated
        in the past week" (paper §IV-B); the range is retained."""
        self.counts = [0] * self.n_slots

    # ------------------------------------------------------------------
    def threshold(self) -> Optional[float]:
        """Run Algorithm 1 and return lambda, or None without data."""
        if self.var_min is None or self.delta == 0.0:
            return None
        return select_threshold(self.var_min, self.delta, self.counts)


def select_threshold(var_min: float, delta: float,
                     counts: Sequence[int]) -> float:
    """Algorithm 1: optimal 2-cluster boundary over histogram slots.

    Returns lambda = var_min + j* * delta where j* minimises the summed
    intra-cluster distances with plain-mean cluster centres.
    """
    n = len(counts)
    if n < 2:
        raise ValueError("need at least 2 slots")
    if delta <= 0:
        raise ValueError("delta must be positive")
    centers = [var_min + (i - 0.5) * delta for i in range(1, n + 1)]

    # Prefix sums for O(1) per-candidate centre computation; the
    # distance sums remain O(N) per candidate, matching the embedded
    # implementation's O(N^2) clustering cost.
    best_j = 1
    best_sum = float("inf")
    for j in range(1, n):
        cc1 = sum(centers[:j]) / j
        cc2 = sum(centers[j:]) / (n - j)
        sum1 = sum(counts[k] * abs(centers[k] - cc1) for k in range(j))
        sum2 = sum(counts[k] * abs(centers[k] - cc2) for k in range(j, n))
        total = sum1 + sum2
        if total < best_sum:
            best_sum = total
            best_j = j
    return var_min + best_j * delta


class ExactClusterOracle:
    """Ground-truth clustering over all historical variance values.

    Stores every variance (which a 10 KB-RAM mote cannot) and finds the
    split of the *sorted values* minimising total intra-cluster L1
    distance to the cluster means.  Its threshold is the optimal lambda
    the histogram approximates.
    """

    def __init__(self) -> None:
        self.values: List[float] = []

    def add(self, variance: float) -> None:
        if variance < 0:
            raise ValueError(f"variance cannot be negative: {variance}")
        self.values.append(variance)

    def threshold(self) -> Optional[float]:
        """Optimal two-cluster boundary, or None with < 2 distinct values.

        Fully vectorised over the n-1 candidate splits: for sorted
        values, the L1 distance of a contiguous block [lo, hi) to its
        mean is ``mean*b - P[j] + (P[hi]-P[j]) - mean*a`` from prefix
        sums P, where j positions the mean within the block.  Because
        the array is globally sorted, the per-block ``searchsorted`` is
        recoverable from one whole-array searchsorted per side: elements
        below a left-block mean all live in the prefix (clip at the
        split) and elements below a right-block mean fill at least the
        prefix (clip the other way).  Each elementwise operation repeats
        the scalar expression, so costs — and the selected split — match
        the former per-split loop bit for bit.
        """
        if len(self.values) < 2:
            return None
        import numpy as np

        ordered = np.sort(np.asarray(self.values, dtype=float))
        if ordered[0] == ordered[-1]:
            return None
        n = ordered.size
        prefix = np.concatenate(([0.0], np.cumsum(ordered)))

        splits = np.arange(1, n)
        # Left block [0, s): mean <= ordered[s-1], so every element
        # below it sits in the prefix and the global insertion point
        # needs at most clipping to s.
        mean1 = prefix[splits] / splits
        j1 = np.minimum(np.searchsorted(ordered, mean1), splits)
        cost1 = ((mean1 * j1 - prefix[j1])
                 + ((prefix[splits] - prefix[j1]) - mean1 * (splits - j1)))
        # Right block [s, n): mean >= ordered[s], so the insertion point
        # is at least s.
        mean2 = (prefix[n] - prefix[splits]) / (n - splits)
        j2 = np.maximum(np.searchsorted(ordered, mean2), splits)
        cost2 = ((mean2 * (j2 - splits) - (prefix[j2] - prefix[splits]))
                 + ((prefix[n] - prefix[j2]) - mean2 * (n - j2)))
        best_split = int(np.argmin(cost1 + cost2)) + 1
        return 0.5 * (ordered[best_split - 1] + ordered[best_split])


# ----------------------------------------------------------------------
# MSP430 resource model (paper Fig. 12(b,c)); calibration in DESIGN.md.
# ----------------------------------------------------------------------

# Each slot counter is 2 bytes; var_min/var_max and bookkeeping add a
# fixed 10 bytes.  N = 60 -> 130 bytes, matching the paper.
_RAM_PER_SLOT_BYTES = 2
_RAM_FIXED_BYTES = 10

# Algorithm 1 is O(N^2) on the mote; the paper measures 1600 ms at
# N = 60, giving the quadratic coefficient below.
_CPU_SECONDS_AT_60 = 1.6


def histogram_ram_bytes(n_slots: int) -> int:
    """RAM footprint of an N-slot histogram on the MSP430."""
    if n_slots < 1:
        raise ValueError("need at least one slot")
    return _RAM_FIXED_BYTES + _RAM_PER_SLOT_BYTES * n_slots


def histogram_cpu_seconds(n_slots: int) -> float:
    """Wall time of one Algorithm 1 run on the MSP430."""
    if n_slots < 1:
        raise ValueError("need at least one slot")
    return _CPU_SECONDS_AT_60 * (n_slots / 60.0) ** 2
