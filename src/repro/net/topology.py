"""Radio topology for building-scale (multihop) deployments.

The paper's BubbleZERO lab is a single broadcast cell, but its stated
future work is "improving the scalability of BubbleZERO, including the
extension to multihop networking conditions … so as to support building
level deployment" (paper §VII).  This module provides the geometric
substrate: node placements, range-limited connectivity, and standard
deployment generators (a corridor of BubbleZERO-like rooms).

Connectivity is disk-graph: two nodes hear each other iff their distance
is at most the radio range.  The graph is held as a ``networkx.Graph``
so routing layers can run standard algorithms on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class NodePlacement:
    """One radio node at a planar position."""

    node_id: str
    x: float
    y: float

    def distance_to(self, other: "NodePlacement") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class RadioTopology:
    """Disk-graph connectivity over a set of placements."""

    def __init__(self, placements: Sequence[NodePlacement],
                 radio_range_m: float) -> None:
        if radio_range_m <= 0:
            raise ValueError("radio range must be positive")
        ids = [p.node_id for p in placements]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in placement list")
        self.radio_range_m = radio_range_m
        self._placements: Dict[str, NodePlacement] = {
            p.node_id: p for p in placements}
        self.graph = nx.Graph()
        for p in placements:
            self.graph.add_node(p.node_id, pos=(p.x, p.y))
        items = list(placements)
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                distance = a.distance_to(b)
                if distance <= radio_range_m:
                    self.graph.add_edge(a.node_id, b.node_id,
                                        distance=distance)

    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> List[str]:
        return sorted(self._placements)

    def placement_of(self, node_id: str) -> NodePlacement:
        return self._placements[node_id]

    def neighbors(self, node_id: str) -> List[str]:
        """Nodes within radio range of ``node_id``."""
        return sorted(self.graph.neighbors(node_id))

    def in_range(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def hop_distance(self, a: str, b: str) -> Optional[int]:
        """Shortest hop count between two nodes, or None if partitioned."""
        try:
            return nx.shortest_path_length(self.graph, a, b)
        except nx.NetworkXNoPath:
            return None

    def diameter_hops(self) -> int:
        if not self.is_connected():
            raise ValueError("topology is partitioned")
        return nx.diameter(self.graph)

    def steiner_tree_edges(self, terminals: Iterable[str]
                           ) -> List[Tuple[str, str]]:
        """Edges of an (approximate) multicast tree spanning ``terminals``.

        Uses the classic shortest-path-union heuristic: union of the
        shortest paths from the first terminal to every other; the
        result is a connected subgraph covering all terminals, pruned
        to a tree.
        """
        terminals = sorted(set(terminals))
        if len(terminals) < 2:
            return []
        subgraph_nodes = set()
        root = terminals[0]
        for terminal in terminals[1:]:
            path = nx.shortest_path(self.graph, root, terminal)
            subgraph_nodes.update(path)
        tree = nx.minimum_spanning_tree(
            self.graph.subgraph(subgraph_nodes))
        return sorted((min(a, b), max(a, b)) for a, b in tree.edges)


def bubble_deployment(topology, seed: int = 0,
                      sensor_scatter_m: float = 0.8) -> List[NodePlacement]:
    """Node placements for a declarative scenario topology.

    Takes a :class:`~repro.scenarios.topology.SystemTopology` and
    returns one placement per device in its roster — the singleton
    boards near the room centre, the per-zone boards at their zone
    centre, and each zone's bt-sensor nodes jittered around the centre
    by at most ``sensor_scatter_m`` — so the radio-layer studies can
    run on exactly the device ids a built system will carry.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    cx = topology.length_m / 2.0
    cy = topology.width_m / 2.0
    centers = topology.zone_centers
    placements: List[NodePlacement] = []
    for board_id in topology.board_ids():
        suffix = board_id.rsplit("-", 1)[-1]
        if suffix.isdigit():
            x, y = centers[int(suffix)]
        else:
            x, y = cx, cy
        placements.append(NodePlacement(board_id, float(x), float(y)))
    sensors_per_zone = len(topology.sensor_node_ids()) // topology.zone_count
    for zone, (zx, zy) in enumerate(centers):
        for s in range(sensors_per_zone):
            node_id = topology.sensor_node_ids()[
                zone * sensors_per_zone + s]
            placements.append(NodePlacement(
                node_id,
                float(zx + rng.uniform(-sensor_scatter_m,
                                       sensor_scatter_m)),
                float(zy + rng.uniform(-sensor_scatter_m,
                                       sensor_scatter_m))))
    return placements


def corridor_deployment(rooms: int, sensors_per_room: int = 3,
                        room_pitch_m: float = 12.0,
                        room_width_m: float = 6.0,
                        seed: int = 0) -> List[NodePlacement]:
    """A corridor of BubbleZERO-like rooms for building-scale studies.

    Each room contributes one controller node (at the room centre) and
    ``sensors_per_room`` sensor nodes spread within the room.  Rooms are
    laid out along a corridor at ``room_pitch_m`` spacing, so with the
    default TelosB-indoor range only adjacent rooms hear each other.
    """
    if rooms < 1:
        raise ValueError("need at least one room")
    import numpy as np
    rng = np.random.default_rng(seed)
    placements: List[NodePlacement] = []
    for room in range(rooms):
        cx = room * room_pitch_m
        placements.append(NodePlacement(f"room{room}/ctrl", cx, 0.0))
        for s in range(sensors_per_room):
            placements.append(NodePlacement(
                f"room{room}/sensor{s}",
                cx + float(rng.uniform(-room_width_m / 2, room_width_m / 2)),
                float(rng.uniform(-room_width_m / 2, room_width_m / 2))))
    return placements
