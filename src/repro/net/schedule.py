"""AC-device transmission schedule adaptation (paper §I, §IV).

AC-powered devices (the control boards) transmit periodic reports and
never need to sleep, but with many of them sharing one channel their
periodic schedules collide.  The paper "let[s] the AC powered devices
adapt their transmission schedules to alleviate channel contentions",
reducing packet loss and delay — which in turn saves bt-device energy
(fewer retransmissions of lost updates).

The adapter implements phase desynchronisation: each device divides its
period into phase bins, listens to the (always-on) radio to accumulate
a channel-busy profile per bin, and periodically re-anchors its send
offset to the quietest bin, with a small random dither to break ties
between devices that would otherwise pick the same bin.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.engine import Simulator


class AcScheduleAdapter:
    """Per-device phase chooser for periodic AC transmissions."""

    # Whether this adapter ever reads its busy profile; the fixed
    # baseline never adapts, so it skips activity-log registration.
    wants_activity = True

    def __init__(self, sim: Simulator, device_id: str, period_s: float,
                 bins: int = 20, adapt_every: int = 10,
                 dither_fraction: float = 0.15) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if bins < 2:
            raise ValueError("need at least 2 phase bins")
        if not (0 <= dither_fraction < 1):
            raise ValueError("dither fraction must be in [0, 1)")
        self.sim = sim
        self.device_id = device_id
        self.period_s = period_s
        self.bins = bins
        self.adapt_every = adapt_every
        self.dither_fraction = dither_fraction
        self._busy_profile: List[float] = [0.0] * bins
        self._activity_log = None
        self._sends_since_adapt = 0
        self._rng = sim.rng.stream(f"acsched/{device_id}")
        # Start at a random phase, as real boards boot at arbitrary times.
        self._offset = float(self._rng.uniform(0.0, period_s))
        self.adaptations = 0

    # ------------------------------------------------------------------
    @property
    def offset_s(self) -> float:
        """Current send offset within the period."""
        return self._offset

    def connect(self, medium) -> None:
        """Follow ``medium``'s channel-activity log.

        Occupancy accumulates lazily: transmissions land in the shared
        log and are folded into the busy profile only when the adapter
        is about to adapt.  The result is identical to per-frame
        ``observe_busy`` push calls — the offset never changes between
        adaptations, so deferred frames bin exactly the same way — but
        frames nobody will ever inspect cost one shared tuple append
        instead of one Python call per adapter.
        """
        if self.wants_activity:
            self._activity_log = medium.activity_log
            self._activity_log.register(self)

    def _drain_activity(self) -> None:
        if self._activity_log is None:
            return
        start_l, dur_l = self._activity_log.drain(self)
        if len(start_l) < 64:
            observe = self.observe_busy
            for start, duration in zip(start_l, dur_l):
                observe(start, duration)
            return
        # Bulk path: the phase/bin arithmetic is vectorised, then the
        # accumulation runs as a minimal Python loop *in log order* so
        # float rounding matches the per-frame path bit for bit (summing
        # out of order would perturb the quietest-bin argmin).  Frames
        # spanning a bin boundary (airtime ~1 ms vs bins >= 100 ms, so
        # rare) fall back to the exact multi-bin walk.
        bin_width = self.period_s / self.bins
        starts = np.asarray(start_l)
        durations = np.asarray(dur_l)
        phases = (starts - self._offset) % self.period_s
        idx = np.minimum((phases / bin_width).astype(np.int64), self.bins - 1)
        to_boundary = (idx + 1) * bin_width - phases
        single_bin = ((to_boundary > 1e-9 * bin_width)
                      & (durations <= to_boundary))
        profile = self._busy_profile
        observe = self.observe_busy
        idx_l = idx.tolist()
        if bool(single_bin.all()):
            for k, j in enumerate(idx_l):
                profile[j] += dur_l[k]
            return
        fast_l = single_bin.tolist()
        for k, j in enumerate(idx_l):
            if fast_l[k]:
                profile[j] += dur_l[k]
            else:
                observe(start_l[k], dur_l[k])

    def observe_busy(self, start: float, duration: float) -> None:
        """Record channel occupancy overheard by the always-on radio.

        ``start`` is an absolute simulation time; the busy time is
        attributed to the phase bin(s) it falls into.
        """
        if duration < 0:
            raise ValueError("duration cannot be negative")
        bin_width = self.period_s / self.bins
        # Fast path: frame airtimes (~1 ms) are usually far shorter than
        # a phase bin, so the whole burst lands in one bin.
        phase = (start - self._offset) % self.period_s
        idx = int(phase / bin_width)
        if idx >= self.bins:
            idx = self.bins - 1
        to_boundary = (idx + 1) * bin_width - phase
        if to_boundary > 1e-9 * bin_width and duration <= to_boundary:
            self._busy_profile[idx] += duration
            return
        remaining = duration
        t = start
        # Guard against float round-off producing zero-length advances.
        eps = 1e-9 * bin_width
        while remaining > 1e-12:
            phase = (t - self._offset) % self.period_s
            idx = min(int(phase / bin_width), self.bins - 1)
            to_boundary = (idx + 1) * bin_width - phase
            if to_boundary <= eps:
                to_boundary = bin_width
            in_bin = min(remaining, to_boundary)
            self._busy_profile[idx] += in_bin
            t += in_bin
            remaining -= in_bin

    def next_send_time(self) -> float:
        """Absolute time of the next transmission under the schedule.

        Guaranteed strictly in the future: float round-off in the
        division could otherwise return the current instant and trap a
        caller that reschedules from its own firing in a zero-length
        loop.
        """
        now = self.sim.now
        k = int((now - self._offset) // self.period_s) + 1
        when = self._offset + k * self.period_s
        if when <= now + 1e-9:
            when += self.period_s
        return when

    def on_sent(self) -> None:
        """Notify the adapter that one periodic send completed."""
        self._sends_since_adapt += 1
        if self._sends_since_adapt >= self.adapt_every:
            self._sends_since_adapt = 0
            self._adapt()

    # ------------------------------------------------------------------
    def _adapt(self) -> None:
        """Move the offset to the quietest observed phase bin."""
        self._drain_activity()
        if all(b == 0.0 for b in self._busy_profile):
            return
        bin_width = self.period_s / self.bins
        quietest = min(range(self.bins), key=lambda i: self._busy_profile[i])
        dither = float(self._rng.uniform(0.0, self.dither_fraction * bin_width))
        new_phase = quietest * bin_width + dither
        self._offset = (self._offset + new_phase) % self.period_s
        self._busy_profile = [0.0] * self.bins
        self.adaptations += 1


class FixedScheduleAdapter(AcScheduleAdapter):
    """Baseline: keeps its initial phase forever (no adaptation).

    Used by the ablation benchmark to quantify what the contention
    adaptation buys.  Construct with ``aligned_offset`` to force many
    devices onto the same phase — the worst case the adaptive scheme
    escapes.
    """

    wants_activity = False  # never reads its busy profile

    def __init__(self, sim: Simulator, device_id: str, period_s: float,
                 aligned_offset: Optional[float] = None, **kwargs) -> None:
        super().__init__(sim, device_id, period_s, **kwargs)
        if aligned_offset is not None:
            self._offset = float(aligned_offset) % period_s

    def _adapt(self) -> None:  # never moves
        return
