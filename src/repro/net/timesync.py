"""On-demand time synchronization for the sensor network.

The paper's evaluation rests on logs "with time stamps" collected from
every device, and cites on-demand time synchronization [ref. 29, Zhong
et al., INFOCOM 2011] in its related work.  Real motes keep time with
cheap crystals that drift tens of ppm, so multi-device analyses need a
synchronisation protocol.  This module reproduces the essential
mechanism:

* :class:`DriftingClock` — a local clock with a fixed frequency error
  (ppm) and initial phase offset relative to simulation time;
* :class:`TimeSyncProtocol` — sender-receiver pair synchronisation: a
  reference node timestamps a beacon, receivers estimate offset *and*
  skew from two beacons (linear regression on two points), achieving
  bounded error between refreshes — the "predictable accuracy" of the
  cited work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator, PRIORITY_NETWORK

PPM = 1e-6


class DriftingClock:
    """A mote's local clock: true_time * (1 + skew) + offset."""

    def __init__(self, skew_ppm: float, offset_s: float = 0.0) -> None:
        self.skew = skew_ppm * PPM
        self.offset_s = offset_s

    def local_time(self, true_time: float) -> float:
        """What this mote's clock reads at ``true_time``."""
        return true_time * (1.0 + self.skew) + self.offset_s

    def true_from_local(self, local: float) -> float:
        """Invert :meth:`local_time`."""
        return (local - self.offset_s) / (1.0 + self.skew)


@dataclass
class SyncState:
    """A receiver's current estimate of the reference clock mapping.

    Maps local time to estimated reference time as
    ``ref ~= alpha * local + beta``.
    """

    alpha: float = 1.0
    beta: float = 0.0
    last_beacon_local: Optional[float] = None
    last_beacon_ref: Optional[float] = None
    beacons_seen: int = 0

    def to_reference(self, local: float) -> float:
        return self.alpha * local + self.beta

    def absorb_beacon(self, local: float, reference: float) -> None:
        """Update the mapping from one (local, reference) pair.

        The first beacon fixes the offset; each subsequent beacon also
        re-estimates the skew from the interval since the previous one.
        """
        if (self.last_beacon_local is not None
                and local > self.last_beacon_local):
            self.alpha = ((reference - self.last_beacon_ref)
                          / (local - self.last_beacon_local))
        self.beta = reference - self.alpha * local
        self.last_beacon_local = local
        self.last_beacon_ref = reference
        self.beacons_seen += 1


class TimeSyncProtocol:
    """Beacon-based synchronisation of a fleet against a reference node.

    The reference broadcasts beacons carrying its local timestamp every
    ``beacon_period_s``; the propagation + MAC delay is bounded by the
    frame airtime (sub-millisecond), so receivers treat arrival as the
    timestamp instant plus a fixed half-airtime correction.
    """

    def __init__(self, sim: Simulator, reference: DriftingClock,
                 clocks: Dict[str, DriftingClock],
                 beacon_period_s: float = 60.0,
                 airtime_s: float = 0.0008) -> None:
        if beacon_period_s <= 0:
            raise ValueError("beacon period must be positive")
        self.sim = sim
        self.reference = reference
        self.clocks = clocks
        self.beacon_period_s = beacon_period_s
        self.airtime_s = airtime_s
        self.states: Dict[str, SyncState] = {
            node: SyncState() for node in clocks}
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule_in(self.beacon_period_s, self._beacon,
                             priority=PRIORITY_NETWORK, name="timesync")

    def stop(self) -> None:
        self._running = False

    def _beacon(self) -> None:
        if not self._running:
            return
        true_now = self.sim.now
        ref_stamp = self.reference.local_time(true_now)
        arrival = true_now + self.airtime_s
        for node, clock in self.clocks.items():
            local_arrival = clock.local_time(arrival)
            # Receivers compensate the known airtime (ppm-scale skew
            # makes the local-unit difference negligible).
            self.states[node].absorb_beacon(local_arrival - self.airtime_s,
                                            ref_stamp)
        self.sim.schedule_in(self.beacon_period_s, self._beacon,
                             priority=PRIORITY_NETWORK, name="timesync")

    # ------------------------------------------------------------------
    def sync_error_s(self, node: str) -> float:
        """Current |estimated - actual| reference-time error for a node."""
        true_now = self.sim.now
        clock = self.clocks[node]
        state = self.states[node]
        estimated = state.to_reference(clock.local_time(true_now))
        actual = self.reference.local_time(true_now)
        return abs(estimated - actual)

    def worst_error_s(self) -> float:
        return max(self.sync_error_s(node) for node in self.clocks)


def align_timestamps(states: Dict[str, SyncState],
                     logs: Dict[str, List[float]]) -> Dict[str, List[float]]:
    """Map per-device local timestamps onto the reference timeline.

    This is the offline step the paper's analysis performs before
    correlating logs from different devices.
    """
    aligned: Dict[str, List[float]] = {}
    for node, stamps in logs.items():
        state = states[node]
        aligned[node] = [state.to_reference(s) for s in stamps]
    return aligned
