"""Packets and data types.

Messages in BubbleZERO are addressed by *data type*, not by receiver:
"we let the suppliers categorize and address its data messages to
certain 'types', e.g., temperature, humidity, CO2 concentration, etc,
and broadcast data to the wireless channel" (paper §IV-A).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

# 802.15.4 PHY at 250 kbps: 4-byte preamble + 1 SFD + 1 PHY length, plus
# a typical 11-byte MAC header/footer.
PHY_RATE_BPS = 250_000.0
PHY_OVERHEAD_BYTES = 6
MAC_OVERHEAD_BYTES = 11


class DataType(enum.Enum):
    """Message categories used for type-addressed dissemination.

    Members are singletons, so identity hashing is semantically
    equivalent to ``Enum``'s name-based hash while avoiding a Python
    ``__hash__`` call on every dict/set lookup — and type-filter lookups
    happen once per receiver per delivered frame.  Nothing in the repo
    iterates unsorted ``DataType`` sets, so the id-derived ordering
    never leaks into results.
    """

    __hash__ = object.__hash__

    TEMPERATURE = "temperature"
    HUMIDITY = "humidity"
    CO2 = "co2"
    WATER_TEMP = "water_temp"
    WATER_FLOW = "water_flow"
    DEW_TARGET = "dew_target"
    AIRBOX_DEW = "airbox_dew"
    PUMP_CMD = "pump_cmd"
    FAN_CMD = "fan_cmd"
    FLAP_CMD = "flap_cmd"
    # Zone-to-zone consensus state exchange (decentralized temperature
    # control; only the ``consensus`` policy ever emits these frames).
    CONSENSUS = "consensus"


_packet_ids = itertools.count(1)

# payload_bytes -> airtime_s; only valid sizes are ever stored.
_AIRTIME_CACHE: Dict[int, float] = {}


@dataclass(slots=True)
class Packet:
    """One broadcast frame.

    ``payload`` maps field names to values (e.g. ``{"value": 25.3,
    "subspace": 1}``); ``payload_bytes`` is the on-air payload size used
    for airtime computation.
    """

    data_type: DataType
    source: str
    created_at: float
    payload: Dict[str, Any] = field(default_factory=dict)
    payload_bytes: int = 8
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Causal-trace context: (trace_id, root_span_id, root_state) when
    # the frame belongs to a traced sensing epoch, None otherwise.  Set
    # once at origination and read by the MAC/medium/bus hooks — the
    # explicit propagation field of repro.obs.trace.  The third element
    # is the collector's mutable root record, carried here so hot-path
    # hooks never pay a trace-id lookup.  Excluded from equality:
    # tracing must not change how packets compare.
    trace_ctx: Optional[tuple] = field(default=None, repr=False,
                                       compare=False)
    _airtime_s: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Airtime depends only on the payload size, and nearly every
        # frame in a run shares the same handful of sizes — memoise
        # instead of redoing the arithmetic per packet.  The cache also
        # stands in for the size validation: ``frame_airtime_s`` raises
        # before anything is stored for an invalid size.
        airtime = _AIRTIME_CACHE.get(self.payload_bytes)
        if airtime is None:
            if self.payload_bytes > 114:
                raise ValueError(
                    f"payload of {self.payload_bytes} bytes exceeds the "
                    "802.15.4 frame limit")
            airtime = frame_airtime_s(self.payload_bytes)
            _AIRTIME_CACHE[self.payload_bytes] = airtime
        self._airtime_s = airtime

    @property
    def frame_bytes(self) -> int:
        """Total on-air size including PHY and MAC overhead."""
        return PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES + self.payload_bytes

    def airtime_s(self) -> float:
        """Time this frame occupies the channel (precomputed)."""
        return self._airtime_s


def frame_airtime_s(payload_bytes: int) -> float:
    """Airtime of a frame with ``payload_bytes`` of payload, seconds.

    >>> round(frame_airtime_s(8) * 1e6)
    800
    """
    if payload_bytes <= 0:
        raise ValueError("payload size must be positive")
    total = PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES + payload_bytes
    return total * 8.0 / PHY_RATE_BPS
