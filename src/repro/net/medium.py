"""The shared broadcast radio channel.

BubbleZERO's space is small relative to TelosB range ("TelosB motes can
reliably communicate up to 50 m in the indoor environment" — paper
§IV-A), so the medium is a single-cell broadcast domain: every
transmission is heard by every device.  Two transmissions that overlap
in time collide and are lost at all receivers; otherwise delivery
succeeds unless an independent per-reception noise loss strikes.

A :class:`Sniffer` registered on the medium sees every frame and its
fate — the simulation counterpart of the paper's "TelosB based sniffer
nodes [that] collect all network packets".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator, PRIORITY_NETWORK


@dataclass
class Transmission:
    """One frame in flight."""

    packet: Packet
    sender: str
    start: float
    end: float
    collided: bool = False


@dataclass
class SnifferRecord:
    """What the sniffer logged about one frame."""

    packet: Packet
    sender: str
    start: float
    end: float
    collided: bool
    receivers_reached: int


class Sniffer:
    """Promiscuous logger of everything on the channel."""

    def __init__(self) -> None:
        self.records: List[SnifferRecord] = []

    def log(self, record: SnifferRecord) -> None:
        self.records.append(record)

    def frames_of(self, data_type) -> List[SnifferRecord]:
        return [r for r in self.records if r.packet.data_type == data_type]

    @property
    def collision_count(self) -> int:
        return sum(1 for r in self.records if r.collided)

    @property
    def frame_count(self) -> int:
        return len(self.records)


class BroadcastMedium:
    """Single-cell broadcast channel with collision semantics."""

    def __init__(self, sim: Simulator, loss_probability: float = 0.02) -> None:
        if not (0 <= loss_probability < 1):
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.loss_probability = loss_probability
        self._active: List[Transmission] = []
        self._receivers: Dict[str, Callable[[Packet, str], None]] = {}
        self._sniffers: List[Sniffer] = []
        self._activity_listeners: List[Callable[[float, float], None]] = []
        self.total_transmissions = 0
        self.total_collisions = 0

    # ------------------------------------------------------------------
    def attach_receiver(self, device_id: str,
                        handler: Callable[[Packet, str], None]) -> None:
        """Register ``handler(packet, sender)`` to hear the channel."""
        if device_id in self._receivers:
            raise ValueError(f"device {device_id!r} already attached")
        self._receivers[device_id] = handler

    def detach_receiver(self, device_id: str) -> None:
        self._receivers.pop(device_id, None)

    def attach_sniffer(self, sniffer: Sniffer) -> None:
        self._sniffers.append(sniffer)

    def add_activity_listener(self,
                              listener: Callable[[float, float], None]) -> None:
        """Register ``listener(start_time, airtime)`` called on every
        transmission — the hook the AC schedule adapters use to build
        their channel-busy profiles from their always-on radios."""
        self._activity_listeners.append(listener)

    # ------------------------------------------------------------------
    def is_busy(self) -> bool:
        """Clear-channel assessment at the current instant."""
        now = self.sim.now
        return any(tx.start <= now < tx.end for tx in self._active)

    def transmit(self, packet: Packet, sender: str) -> Transmission:
        """Put ``packet`` on the air starting now.

        The MAC is responsible for CCA; the medium faithfully collides
        anything that overlaps (e.g. two devices whose CCA passed at the
        same instant).
        """
        now = self.sim.now
        tx = Transmission(packet=packet, sender=sender, start=now,
                          end=now + packet.airtime_s())
        for other in self._active:
            if other.end > now:  # any still-active frame overlaps ours
                other.collided = True
                tx.collided = True
        self._active.append(tx)
        self.total_transmissions += 1
        for listener in self._activity_listeners:
            listener(tx.start, packet.airtime_s())
        self.sim.schedule_at(tx.end, lambda: self._complete(tx),
                             priority=PRIORITY_NETWORK,
                             name=f"rx-complete/{packet.packet_id}")
        return tx

    def _complete(self, tx: Transmission) -> None:
        self._active.remove(tx)
        reached = 0
        if tx.collided:
            self.total_collisions += 1
        else:
            rng = self.sim.rng.stream("medium/loss")
            for device_id, handler in list(self._receivers.items()):
                if device_id == tx.sender:
                    continue
                if rng.uniform() < self.loss_probability:
                    continue
                handler(tx.packet, tx.sender)
                reached += 1
        record = SnifferRecord(
            packet=tx.packet, sender=tx.sender, start=tx.start, end=tx.end,
            collided=tx.collided, receivers_reached=reached)
        for sniffer in self._sniffers:
            sniffer.log(record)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        sent = self.total_transmissions
        return {
            "transmissions": sent,
            "collisions": self.total_collisions,
            "collision_rate": (self.total_collisions / sent) if sent else 0.0,
        }
