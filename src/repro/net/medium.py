"""The shared broadcast radio channel.

BubbleZERO's space is small relative to TelosB range ("TelosB motes can
reliably communicate up to 50 m in the indoor environment" — paper
§IV-A), so the medium is a single-cell broadcast domain: every
transmission is heard by every device.  Two transmissions that overlap
in time collide and are lost at all receivers; otherwise delivery
succeeds unless an independent per-reception noise loss strikes.

A :class:`Sniffer` registered on the medium sees every frame and its
fate — the simulation counterpart of the paper's "TelosB based sniffer
nodes [that] collect all network packets".

Delivery is the hottest loop of network-bound runs, so the medium
vectorises the per-receiver loss draws (one ``uniform(size=n)`` call per
frame, consuming the ``medium/loss`` stream in exactly the same order as
the former one-draw-per-receiver loop) and, for receivers that are
:class:`~repro.net.broadcast.TypeBus` endpoints, inlines the bus's
type-filter fast path to skip a Python call per uninterested receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.obs.events import COLLISION_BURST
from repro.sim.engine import Simulator, PRIORITY_NETWORK


@dataclass(slots=True, eq=False)
class Transmission:
    """One frame in flight.

    Identity equality (``eq=False``): ``_active.remove(tx)`` runs once
    per frame, and a generated ``__eq__`` would deep-compare packets
    (including payload dicts) on every scan step.
    """

    packet: Packet
    sender: str
    start: float
    end: float
    collided: bool = False


@dataclass(slots=True)
class SnifferRecord:
    """What the sniffer logged about one frame."""

    packet: Packet
    sender: str
    start: float
    end: float
    collided: bool
    receivers_reached: int


class Sniffer:
    """Promiscuous logger of everything on the channel.

    ``collision_count`` and ``frames_of`` are answered from running
    counters and a per-type index maintained in :meth:`log` — both
    used to re-scan the full frame list on every call, which made each
    per-report query O(total frames) on multi-hour runs.
    """

    def __init__(self) -> None:
        self.records: List[SnifferRecord] = []
        self._collisions = 0
        self._by_type: Dict[object, List[SnifferRecord]] = {}

    def log(self, record: SnifferRecord) -> None:
        self.records.append(record)
        if record.collided:
            self._collisions += 1
        self._by_type.setdefault(record.packet.data_type,
                                 []).append(record)

    def frames_of(self, data_type) -> List[SnifferRecord]:
        """Frames carrying ``data_type``, in arrival order (a copy)."""
        return list(self._by_type.get(data_type, ()))

    @property
    def collision_count(self) -> int:
        return self._collisions

    @property
    def frame_count(self) -> int:
        return len(self.records)


class ChannelActivityLog:
    """Shared record of channel occupancy, consumed pull-style.

    The AC schedule adapters used to be push-subscribed to every
    transmission (one Python call per adapter per frame); instead the
    medium appends ``(start, airtime)`` once per frame and each adapter
    drains the entries it has not yet seen when it actually needs its
    busy profile (at adaptation time).  Entries every cursor has passed
    are trimmed so the log stays bounded.
    """

    __slots__ = ("_starts", "_durations", "_base", "_cursors")

    _TRIM_THRESHOLD = 4096

    def __init__(self) -> None:
        # Parallel flat lists rather than a list of pairs: consumers
        # feed the slices straight into numpy, and ``asarray`` on a flat
        # float list is far cheaper than on a list of tuples.
        self._starts: List[float] = []
        self._durations: List[float] = []
        self._base = 0  # absolute index of _starts[0]
        self._cursors: Dict[int, int] = {}

    def __bool__(self) -> bool:
        return bool(self._cursors)

    def append(self, start: float, duration: float) -> None:
        self._starts.append(start)
        self._durations.append(duration)

    def register(self, owner: object) -> None:
        """Start a cursor for ``owner`` at the current end of the log."""
        self._cursors[id(owner)] = self._base + len(self._starts)

    def drain(self, owner: object) -> Tuple[List[float], List[float]]:
        """Entries appended since ``owner`` last drained, oldest first.

        Returns parallel ``(starts, durations)`` lists.
        """
        cursor = self._cursors[id(owner)]
        end = self._base + len(self._starts)
        lo = cursor - self._base
        pending = (self._starts[lo:], self._durations[lo:])
        self._cursors[id(owner)] = end
        lag = min(self._cursors.values()) - self._base
        if lag > self._TRIM_THRESHOLD:
            del self._starts[:lag]
            del self._durations[:lag]
            self._base += lag
        return pending


class BroadcastMedium:
    """Single-cell broadcast channel with collision semantics."""

    def __init__(self, sim: Simulator, loss_probability: float = 0.02) -> None:
        if not (0 <= loss_probability < 1):
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.loss_probability = loss_probability
        self._active: List[Transmission] = []
        self._receivers: Dict[str, Callable[[Packet, str], None]] = {}
        # Flat snapshot of (device_id, handler, bus) for the delivery
        # loop; rebuilt lazily after attach/detach.  ``bus`` is the
        # receiver's TypeBus when it has one, enabling the inlined
        # type-filter fast path in ``_complete``.
        self._entries: Optional[List[Tuple[str, Callable, object]]] = None
        # Per-sender views of ``_entries`` with the sender itself
        # removed, so the delivery loop needs no string compare per
        # receiver.  Keyed by sender id, built lazily, invalidated with
        # ``_entries``.
        self._entries_by_sender: Dict[str, List[Tuple[str, Callable,
                                                      object]]] = {}
        # Delivery plans keyed by (sender, data_type): the sender view
        # pre-split into type-subscribed receivers and filter-only
        # buses, so the per-frame loop does no subscription lookups.
        # Invalidated on attach/detach and on any new subscription
        # (TypeBus.subscribe calls ``invalidate_delivery_plans``).
        self._delivery_plans: Dict[Tuple[str, object], tuple] = {}
        self._buses: Dict[str, object] = {}
        self._loss_rng = None
        # Prefetched loss draws: ``random(N)`` consumes the stream as the
        # concatenation of smaller draws (verified by
        # tests/test_perf_equivalence), and ``medium/loss`` has no other
        # consumer, so slicing per-frame flags out of a block keeps the
        # sequence identical while amortising the per-call RNG overhead
        # over ~200 frames.  ``_loss_floats`` keeps the raw uniforms so a
        # mid-run change of ``loss_probability`` can re-threshold the
        # unconsumed tail without redrawing.
        self._loss_floats = None
        self._loss_bools: List[bool] = []
        self._loss_idx = 0
        self._loss_p: Optional[float] = None
        self._sniffers: List[Sniffer] = []
        self._activity_listeners: List[Callable[[float, float], None]] = []
        self.activity_log = ChannelActivityLog()
        self.total_transmissions = 0
        self.total_collisions = 0
        # Collision-burst tracking (observability).  The obs context is
        # cached once — the Simulator owns it from construction — and the
        # accumulators stay zero when disabled, so the clean delivery
        # path only ever tests an int.
        self._obs = sim.obs
        self._burst_frames = 0
        self._burst_start = 0.0
        self._burst_end = 0.0

    # ------------------------------------------------------------------
    def attach_receiver(self, device_id: str,
                        handler: Callable[[Packet, str], None],
                        bus: object = None) -> None:
        """Register ``handler(packet, sender)`` to hear the channel.

        ``bus`` is an optional :class:`~repro.net.broadcast.TypeBus`
        owning the handler; when given, the medium dispatches through
        the bus's type filter directly instead of calling the handler
        for every frame.
        """
        if device_id in self._receivers:
            raise ValueError(f"device {device_id!r} already attached")
        self._receivers[device_id] = handler
        if bus is not None:
            self._buses[device_id] = bus
        self._entries = None
        self._entries_by_sender.clear()
        self._delivery_plans.clear()

    def detach_receiver(self, device_id: str) -> None:
        self._receivers.pop(device_id, None)
        self._buses.pop(device_id, None)
        self._entries = None
        self._entries_by_sender.clear()
        self._delivery_plans.clear()

    def invalidate_delivery_plans(self) -> None:
        """Drop cached per-(sender, type) plans after a subscription
        change on any attached bus."""
        self._delivery_plans.clear()

    def attach_sniffer(self, sniffer: Sniffer) -> None:
        self._sniffers.append(sniffer)

    def add_activity_listener(self,
                              listener: Callable[[float, float], None]) -> None:
        """Register ``listener(start_time, airtime)`` called on every
        transmission — the hook the AC schedule adapters use to build
        their channel-busy profiles from their always-on radios."""
        self._activity_listeners.append(listener)

    # ------------------------------------------------------------------
    def is_busy(self) -> bool:
        """Clear-channel assessment at the current instant."""
        now = self.sim.clock.now
        for tx in self._active:
            if tx.start <= now < tx.end:
                return True
        return False

    def transmit(self, packet: Packet, sender: str) -> Transmission:
        """Put ``packet`` on the air starting now.

        The MAC is responsible for CCA; the medium faithfully collides
        anything that overlaps (e.g. two devices whose CCA passed at the
        same instant).
        """
        now = self.sim.clock.now
        airtime = packet.airtime_s()
        tx = Transmission(packet=packet, sender=sender, start=now,
                          end=now + airtime)
        for other in self._active:
            if other.end > now:  # any still-active frame overlaps ours
                other.collided = True
                tx.collided = True
        self._active.append(tx)
        self.total_transmissions += 1
        if self.activity_log:
            self.activity_log.append(now, airtime)
        if self._activity_listeners:
            for listener in self._activity_listeners:
                listener(now, airtime)
        # Direct fire-and-forget push (``tx.end >= now`` by construction,
        # so ``post_at``'s validation cannot fire here).
        self.sim.queue.push_fire(tx.end, PRIORITY_NETWORK,
                                 partial(self._complete, tx), "rx-complete")
        return tx

    def _complete(self, tx: Transmission) -> None:
        self._active.remove(tx)
        reached = 0
        if tx.collided:
            self.total_collisions += 1
            if self._obs.enabled:
                if not self._burst_frames:
                    self._burst_start = tx.start
                self._burst_frames += 1
                self._burst_end = tx.end
        else:
            if self._burst_frames:
                self._flush_burst()
            sender = tx.sender
            packet = tx.packet
            plan_key = (sender, packet.data_type)
            plan = self._delivery_plans.get(plan_key)
            if plan is None:
                plan = self._build_plan(plan_key)
            n_receivers, interested, filter_only = plan
            if n_receivers:
                # Slice this frame's flags out of the prefetched block.
                # Receivers keep their registration-order index into the
                # draw block, so draw i belongs to receiver i exactly as
                # in the original one-scalar-draw-per-receiver loop.
                i0 = self._loss_idx
                i1 = i0 + n_receivers
                if (i1 > len(self._loss_bools)
                        or self.loss_probability != self._loss_p):
                    self._refill_loss(n_receivers)
                    i0 = 0
                    i1 = n_receivers
                self._loss_idx = i1
                lost_flags = self._loss_bools[i0:i1]
                now = self.sim.clock.now
                if True not in lost_flags:
                    # Most frames lose nothing (p ~2% per receiver), so
                    # skip the per-receiver flag checks entirely.
                    reached = n_receivers
                    for i, handler, bus in interested:
                        if bus is None:
                            handler(packet, sender)
                        else:
                            bus.receive_subscribed(packet, sender, now)
                    for i, bus in filter_only:
                        bus.packets_filtered += 1
                else:
                    for i, handler, bus in interested:
                        if lost_flags[i]:
                            continue
                        reached += 1
                        if bus is None:
                            handler(packet, sender)
                        else:
                            bus.receive_subscribed(packet, sender, now)
                    for i, bus in filter_only:
                        if not lost_flags[i]:
                            reached += 1
                            bus.packets_filtered += 1
        if tx.packet.trace_ctx is not None:
            # One hook covers the whole airtime: tx carries its start,
            # and collided/reached are only known here anyway.
            self._obs.trace.air(tx.packet.trace_ctx, tx.sender,
                                tx.start, self.sim.clock.now,
                                1 if tx.collided else 0, reached)
        if self._sniffers:
            record = SnifferRecord(
                packet=tx.packet, sender=tx.sender, start=tx.start,
                end=tx.end, collided=tx.collided, receivers_reached=reached)
            for sniffer in self._sniffers:
                sniffer.log(record)

    # Minimum run of consecutively collided frames that counts as a
    # "burst" worth an event record; isolated collisions are routine
    # CSMA behaviour and would drown the log.
    BURST_MIN_FRAMES = 3

    def _flush_burst(self) -> None:
        """Close the current collision run; emit if it was a burst."""
        if self._burst_frames >= self.BURST_MIN_FRAMES:
            self._obs.events.emit(COLLISION_BURST, self._burst_end,
                                  frames=self._burst_frames,
                                  start=self._burst_start,
                                  end=self._burst_end)
            self._obs.metrics.counter("net.collision_bursts").inc()
        self._burst_frames = 0

    def flush_collision_burst(self) -> None:
        """End-of-run hook: report a burst still open at the horizon."""
        if self._burst_frames:
            self._flush_burst()

    def _sender_entries(self, sender: str) -> List[Tuple[str, Callable,
                                                         object]]:
        """Build and cache the delivery list for frames from ``sender``."""
        entries = self._entries
        if entries is None:
            buses = self._buses
            entries = [(device_id, handler, buses.get(device_id))
                       for device_id, handler in self._receivers.items()]
            self._entries = entries
        without_sender = [entry for entry in entries if entry[0] != sender]
        self._entries_by_sender[sender] = without_sender
        return without_sender

    _LOSS_BLOCK = 4096

    def _refill_loss(self, n: int) -> None:
        """Extend the prefetched loss block so ≥ ``n`` flags are ready.

        The unconsumed tail of the previous block stays at the front —
        the stream is consumed strictly in draw order, blocks only
        partition it.  Re-thresholds everything against the current
        ``loss_probability`` so a mid-run probability change applies to
        all not-yet-used draws.
        """
        import numpy as np

        rng = self._loss_rng
        if rng is None:
            rng = self._loss_rng = self.sim.rng.stream("medium/loss")
        if self._loss_floats is None:
            parts = []
        else:
            parts = [self._loss_floats[self._loss_idx:]]
        parts.append(rng.random(self._LOSS_BLOCK))
        while sum(len(part) for part in parts) < n:  # pragma: no cover
            parts.append(rng.random(self._LOSS_BLOCK))
        floats = parts[0] if len(parts) == 1 else np.concatenate(parts)
        p = self.loss_probability
        self._loss_floats = floats
        self._loss_bools = (floats < p).tolist()
        self._loss_p = p
        self._loss_idx = 0

    def _build_plan(self, plan_key: Tuple[str, object]) -> tuple:
        """Split a sender's receiver list by interest in one data type.

        ``interested`` holds ``(draw_index, handler, bus)`` for bus-less
        receivers (which hear every frame) and buses subscribed to the
        type, in registration order; ``filter_only`` holds
        ``(draw_index, bus)`` for buses that will just count the frame
        as filtered.  Draw indices preserve each receiver's position in
        the per-frame loss block, keeping the ``medium/loss`` stream
        consumption identical to the unsplit loop.
        """
        sender, data_type = plan_key
        entries = self._entries_by_sender.get(sender)
        if entries is None:
            entries = self._sender_entries(sender)
        interested = []
        filter_only = []
        for i, (device_id, handler, bus) in enumerate(entries):
            if bus is None or data_type in bus._subscribers:
                interested.append((i, handler, bus))
            else:
                filter_only.append((i, bus))
        plan = (len(entries), interested, filter_only)
        self._delivery_plans[plan_key] = plan
        return plan

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        sent = self.total_transmissions
        return {
            "transmissions": sent,
            "collisions": self.total_collisions,
            "collision_rate": (self.total_collisions / sent) if sent else 0.0,
        }
