"""Multihop networking: range-limited medium and type-based multicast.

Implements the paper's stated future work (§IV-A, §VII): "When multi-hop
communication must be concerned in large-scale environments, we can
potentially extend our design by forming 'type' based multicast groups
and routing messages with existing ad-hoc multicast approaches."

Three pieces:

* :class:`MultihopMedium` — like the single-cell broadcast medium, but
  frames only reach nodes within radio range, carrier-sense is local,
  and collisions are evaluated *per receiver* (two transmitters out of
  each other's range can still collide at a node that hears both — the
  hidden-terminal case).
* :class:`MulticastRouter` — per-type multicast: subscribers of a data
  type form a group; an (approximate Steiner) tree over the topology
  connects each supplier to the group; only tree forwarders rebroadcast.
* :class:`FloodingRouter` — the baseline: every node rebroadcasts every
  new frame once (sequence-number deduplication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import DataType, Packet
from repro.net.topology import RadioTopology
from repro.sim.engine import Simulator, PRIORITY_NETWORK


@dataclass
class HopTransmission:
    """One frame in flight from one node."""

    packet: Packet
    sender: str
    start: float
    end: float
    # Receivers that saw an overlapping frame from another neighbour.
    jammed_at: Set[str] = field(default_factory=set)


class MultihopMedium:
    """Range-limited broadcast medium with per-receiver collisions."""

    def __init__(self, sim: Simulator, topology: RadioTopology,
                 loss_probability: float = 0.02) -> None:
        if not (0 <= loss_probability < 1):
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.topology = topology
        self.loss_probability = loss_probability
        self._active: List[HopTransmission] = []
        self._receivers: Dict[str, Callable[[Packet, str], None]] = {}
        self.total_transmissions = 0
        self.total_receptions = 0
        self.collision_losses = 0
        # Causal tracing: every hop's airtime becomes an ``air`` span.
        self._trace = sim.obs.trace

    # ------------------------------------------------------------------
    def attach_receiver(self, node_id: str,
                        handler: Callable[[Packet, str], None]) -> None:
        if node_id not in self.topology.node_ids:
            raise ValueError(f"unknown node {node_id!r}")
        if node_id in self._receivers:
            raise ValueError(f"node {node_id!r} already attached")
        self._receivers[node_id] = handler

    def is_busy_near(self, node_id: str) -> bool:
        """Local carrier sense: any in-range neighbour transmitting."""
        now = self.sim.now
        for tx in self._active:
            if tx.start <= now < tx.end:
                if (tx.sender == node_id
                        or self.topology.in_range(tx.sender, node_id)):
                    return True
        return False

    def transmit(self, packet: Packet, sender: str) -> HopTransmission:
        now = self.sim.now
        tx = HopTransmission(packet=packet, sender=sender, start=now,
                             end=now + packet.airtime_s())
        # Per-receiver collision: any node in range of BOTH an active
        # transmission and this one loses both frames there.  A node
        # that is itself transmitting cannot receive (half-duplex).
        for other in self._active:
            if other.end <= now:
                continue
            for node_id in self.topology.neighbors(sender):
                if node_id == other.sender:
                    tx.jammed_at.add(node_id)
                elif self.topology.in_range(other.sender, node_id):
                    tx.jammed_at.add(node_id)
                    other.jammed_at.add(node_id)
        self._active.append(tx)
        self.total_transmissions += 1
        self.sim.schedule_at(tx.end, lambda: self._complete(tx),
                             priority=PRIORITY_NETWORK,
                             name=f"mh-rx/{packet.packet_id}")
        return tx

    def _complete(self, tx: HopTransmission) -> None:
        self._active.remove(tx)
        rng = self.sim.rng.stream("multihop/loss")
        reached = 0
        for node_id in self.topology.neighbors(tx.sender):
            handler = self._receivers.get(node_id)
            if handler is None:
                continue
            if node_id in tx.jammed_at:
                self.collision_losses += 1
                continue
            if rng.uniform() < self.loss_probability:
                continue
            self.total_receptions += 1
            reached += 1
            handler(tx.packet, tx.sender)
        if tx.packet.trace_ctx is not None:
            self._trace.air(tx.packet.trace_ctx, tx.sender, tx.start,
                            self.sim.now,
                            1 if tx.jammed_at else 0, reached)


class NodeChannelView:
    """Adapter exposing the single-cell medium interface for one node.

    Lets the unmodified :class:`~repro.net.mac.CsmaMac` run per node:
    ``is_busy`` is the node's local carrier sense and ``transmit``
    originates from the node's position.
    """

    def __init__(self, medium: MultihopMedium, node_id: str) -> None:
        self.medium = medium
        self.node_id = node_id

    def is_busy(self) -> bool:
        return self.medium.is_busy_near(self.node_id)

    def transmit(self, packet: Packet, sender: str) -> None:
        self.medium.transmit(packet, sender)


@dataclass
class RoutingStats:
    """Counters a router accumulates."""

    originated: int = 0
    forwarded: int = 0
    delivered: int = 0
    duplicates_suppressed: int = 0


class _RouterBase:
    """Shared machinery: dedup, MAC-per-node, delivery callback."""

    def __init__(self, sim: Simulator, medium: MultihopMedium,
                 node_id: str,
                 on_deliver: Optional[Callable[[Packet, str], None]] = None
                 ) -> None:
        from repro.net.mac import CsmaMac
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.on_deliver = on_deliver
        self.stats = RoutingStats()
        self.subscriptions: Set[DataType] = set()
        self._seen: Set[int] = set()
        self.mac = CsmaMac(sim, NodeChannelView(medium, node_id), node_id)
        self._trace = sim.obs.trace
        medium.attach_receiver(node_id, self._receive)

    def subscribe(self, data_type: DataType) -> None:
        self.subscriptions.add(data_type)

    def originate(self, packet: Packet) -> None:
        """Inject a locally-generated frame into the network."""
        if packet.trace_ctx is None and self._trace.enabled:
            packet.trace_ctx = self._trace.begin(
                self.node_id, packet.data_type,
                packet.payload.get("key"), self.sim.now)
        self._seen.add(packet.packet_id)
        self.stats.originated += 1
        if packet.data_type in self.subscriptions:
            self._deliver(packet)
        self.mac.send(packet)

    # ------------------------------------------------------------------
    def _receive(self, packet: Packet, sender: str) -> None:
        if packet.packet_id in self._seen:
            self.stats.duplicates_suppressed += 1
            return
        self._seen.add(packet.packet_id)
        if packet.data_type in self.subscriptions:
            self._deliver(packet)
        if self._should_forward(packet, sender):
            self.stats.forwarded += 1
            self.mac.send(packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        if packet.trace_ctx is not None:
            self._trace.ingest(
                packet.trace_ctx, self.node_id,
                (packet.data_type, packet.payload.get("key")),
                self.sim.now)
        if self.on_deliver is not None:
            self.on_deliver(packet, self.node_id)

    def _should_forward(self, packet: Packet, sender: str) -> bool:
        raise NotImplementedError


class FloodingRouter(_RouterBase):
    """Baseline: rebroadcast every new frame once."""

    def _should_forward(self, packet: Packet, sender: str) -> bool:
        return True


class MulticastRouter(_RouterBase):
    """Type-based multicast: only tree forwarders rebroadcast.

    The forwarding sets are installed by :func:`build_multicast_trees`
    after the subscription pattern is known — the static-analysis
    equivalent of a group-membership protocol converging.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.forwarding_types: Set[DataType] = set()

    def _should_forward(self, packet: Packet, sender: str) -> bool:
        return packet.data_type in self.forwarding_types


def build_multicast_trees(topology: RadioTopology,
                          routers: Dict[str, MulticastRouter],
                          suppliers: Dict[DataType, List[str]]) -> None:
    """Install per-type forwarding sets into the routers.

    For each data type, the group is {all suppliers} U {all subscribers};
    an approximate Steiner tree over the topology spans the group, and
    every non-leaf tree node becomes a forwarder for the type.
    """
    for data_type, supplier_ids in suppliers.items():
        members = set(supplier_ids)
        members.update(node_id for node_id, router in routers.items()
                       if data_type in router.subscriptions)
        if len(members) < 2:
            continue
        edges = topology.steiner_tree_edges(members)
        degree: Dict[str, int] = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        for node_id, count in degree.items():
            if count >= 2 and node_id in routers:
                routers[node_id].forwarding_types.add(data_type)
