"""Unslotted CSMA/CA MAC, 802.15.4 style.

Before transmitting, a device backs off a random number of 320 us unit
backoff periods (initial exponent 3, growing to 5), then performs a
clear-channel assessment; a busy channel retries with a larger window,
up to ``max_backoffs`` attempts before the frame is dropped.  Broadcast
frames carry no acknowledgement, matching the paper's type-addressed
dissemination.

The MAC keeps per-device statistics (frames sent/dropped, backoffs,
queueing + access delay) that the networking benchmarks read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional, Tuple

from repro.net.medium import BroadcastMedium
from repro.net.packet import Packet
from repro.sim.engine import Simulator, PRIORITY_NETWORK

UNIT_BACKOFF_S = 320e-6
MIN_BE = 3
MAX_BE = 5

# RX->TX turnaround (aTurnaroundTime, 12 symbols).  Between a passing
# CCA and the first transmitted symbol the radio is deaf and the
# channel still looks idle to everyone else — this window is where real
# 802.15.4 collisions come from.
TURNAROUND_S = 192e-6


@dataclass
class MacStats:
    """Counters one CsmaMac accumulates."""

    enqueued: int = 0
    sent: int = 0
    dropped: int = 0
    backoffs: int = 0
    cca_failures: int = 0
    total_access_delay_s: float = 0.0

    @property
    def mean_access_delay_s(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.total_access_delay_s / self.sent

    @property
    def drop_rate(self) -> float:
        if self.enqueued == 0:
            return 0.0
        return self.dropped / self.enqueued


class CsmaMac:
    """One device's MAC entity."""

    def __init__(self, sim: Simulator, medium: BroadcastMedium,
                 device_id: str, max_backoffs: int = 4,
                 queue_limit: int = 16,
                 on_transmit: Optional[Callable[[Packet], None]] = None) -> None:
        self.sim = sim
        self.medium = medium
        self.device_id = device_id
        self.max_backoffs = max_backoffs
        self.queue_limit = queue_limit
        self.on_transmit = on_transmit
        self.stats = MacStats()
        self._queue: Deque[Tuple[Packet, float]] = deque()
        self._busy = False

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns False when the queue is full and the frame was dropped
        at admission (the MCU's small frame buffer overflowed).
        """
        if len(self._queue) >= self.queue_limit:
            self.stats.dropped += 1
            return False
        self.stats.enqueued += 1
        self._queue.append((packet, self.sim.now))
        if not self._busy:
            self._start_next()
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, enqueue_time = self._queue[0]
        self._attempt(packet, enqueue_time, attempt=0, be=MIN_BE)

    def _attempt(self, packet: Packet, enqueue_time: float,
                 attempt: int, be: int) -> None:
        rng = self.sim.rng.stream(f"mac/{self.device_id}")
        slots = int(rng.integers(0, 2 ** be))
        delay = slots * UNIT_BACKOFF_S
        self.stats.backoffs += 1 if attempt > 0 else 0
        self.sim.schedule_in(
            delay, lambda: self._cca(packet, enqueue_time, attempt, be),
            priority=PRIORITY_NETWORK, name=f"cca/{self.device_id}")

    def _cca(self, packet: Packet, enqueue_time: float,
             attempt: int, be: int) -> None:
        if self.medium.is_busy():
            self.stats.cca_failures += 1
            if attempt + 1 >= self.max_backoffs:
                # Channel access failure: drop the frame.
                self.stats.dropped += 1
                self._queue.popleft()
                self._start_next()
                return
            self._attempt(packet, enqueue_time, attempt + 1,
                          min(be + 1, MAX_BE))
            return
        # Channel clear: transmit after the radio turnaround.  Another
        # device whose CCA also passes inside this window will overlap
        # us on the air — the collision mechanism of real CSMA/CA.
        self._queue.popleft()
        self.sim.schedule_in(
            TURNAROUND_S,
            lambda: self._transmit(packet, enqueue_time),
            priority=PRIORITY_NETWORK, name=f"mac-tx/{self.device_id}")

    def _transmit(self, packet: Packet, enqueue_time: float) -> None:
        self.stats.sent += 1
        self.stats.total_access_delay_s += self.sim.now - enqueue_time
        self.medium.transmit(packet, self.device_id)
        if self.on_transmit is not None:
            self.on_transmit(packet)
        # Next frame (if any) contends after this one's airtime.
        self.sim.schedule_in(packet.airtime_s(), self._start_next,
                             priority=PRIORITY_NETWORK,
                             name=f"mac-next/{self.device_id}")
