"""Unslotted CSMA/CA MAC, 802.15.4 style.

Before transmitting, a device backs off a random number of 320 us unit
backoff periods (initial exponent 3, growing to 5), then performs a
clear-channel assessment; a busy channel retries with a larger window,
up to ``max_backoffs`` attempts before the frame is dropped.  Broadcast
frames carry no acknowledgement, matching the paper's type-addressed
dissemination.

The MAC keeps per-device statistics (frames sent/dropped, backoffs,
queueing + access delay) that the networking benchmarks read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.net.medium import BroadcastMedium
from repro.net.packet import Packet
from repro.sim.engine import Simulator, PRIORITY_NETWORK

UNIT_BACKOFF_S = 320e-6
MIN_BE = 3
MAX_BE = 5

# RX->TX turnaround (aTurnaroundTime, 12 symbols).  Between a passing
# CCA and the first transmitted symbol the radio is deaf and the
# channel still looks idle to everyone else — this window is where real
# 802.15.4 collisions come from.
TURNAROUND_S = 192e-6

# Backoff window sizes 2**BE for BE = 0..MAX_BE, as a tuple lookup —
# cheaper than re-evaluating the power on every backoff attempt.
_BACKOFF_WINDOW = tuple(2 ** be for be in range(MAX_BE + 1))

# Raw uint64 blocks prefetched per refill of a MAC's backoff buffer.
# Each uint64 yields two 32-bit draw chunks.
_BACKOFF_BLOCK = 128

# Result of the one-time prefetch self-check (None = not yet run).
_PREFETCH_OK: Optional[bool] = None


def _prefetch_is_exact() -> bool:
    """Verify the chunk-prefetch trick against ``Generator.integers``.

    ``_refill_backoff_chunks`` relies on undocumented numpy internals:
    PCG64 serving 32-bit draw chunks as the low/high halves of
    successive uint64s, and ``integers`` spending exactly one chunk per
    draw for the power-of-two backoff windows.  numpy is not pinned, so
    before trusting the trick we replay a few prefetched chunks against
    what ``integers`` itself returns from an identically seeded
    generator; any mismatch (a future numpy changing either internal)
    disables prefetching for the whole process and every MAC falls back
    to per-draw scalar calls — slower, but correct on any numpy.
    """
    global _PREFETCH_OK
    if _PREFETCH_OK is None:
        raw = np.random.Generator(np.random.PCG64(0xB0FF)).integers(
            0, 1 << 64, dtype=np.uint64, size=8)
        chunks = np.empty(16, dtype=np.uint64)
        chunks[0::2] = raw & np.uint64(0xFFFFFFFF)
        chunks[1::2] = raw >> np.uint64(32)
        ref = np.random.Generator(np.random.PCG64(0xB0FF))
        windows = _BACKOFF_WINDOW[MIN_BE:MAX_BE + 1]
        ok = True
        for i, chunk in enumerate(chunks.tolist()):
            w = windows[i % len(windows)]
            if (chunk * w) >> 32 != int(ref.integers(0, w)):
                ok = False
                break
        _PREFETCH_OK = ok
    return _PREFETCH_OK


@dataclass(slots=True)
class MacStats:
    """Counters one CsmaMac accumulates."""

    enqueued: int = 0
    sent: int = 0
    dropped: int = 0
    backoffs: int = 0
    cca_failures: int = 0
    total_access_delay_s: float = 0.0
    max_queue_depth: int = 0

    @property
    def mean_access_delay_s(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.total_access_delay_s / self.sent

    @property
    def drop_rate(self) -> float:
        if self.enqueued == 0:
            return 0.0
        return self.dropped / self.enqueued


class CsmaMac:
    """One device's MAC entity."""

    def __init__(self, sim: Simulator, medium: BroadcastMedium,
                 device_id: str, max_backoffs: int = 4,
                 queue_limit: int = 16,
                 on_transmit: Optional[Callable[[Packet], None]] = None) -> None:
        self.sim = sim
        self.medium = medium
        self.device_id = device_id
        self.max_backoffs = max_backoffs
        self.queue_limit = queue_limit
        self.on_transmit = on_transmit
        self.stats = MacStats()
        self._queue: Deque[Tuple[Packet, float]] = deque()
        self._busy = False
        self._rng = sim.rng.stream(f"mac/{device_id}")
        # Prefetched backoff draws (see ``_refill_backoff_chunks``): the
        # mac stream is consumed only by ``_attempt``, so its 32-bit
        # draw chunks can be buffered ahead of time — but only when the
        # self-check confirms this numpy still serves chunks the way the
        # trick assumes, and the stream really is PCG64-backed.
        self._prefetch = (_prefetch_is_exact()
                          and isinstance(self._rng.bit_generator,
                                         np.random.PCG64))
        self._chunk_buf: List[int] = []
        self._chunk_idx = 0
        # Causal-trace collector, cached like the medium caches its obs
        # context.  Hooks only fire for packets carrying a trace_ctx,
        # so an untraced run pays one attribute test per frame.
        self._trace = sim.obs.trace
        # Event names are rebuilt on every schedule otherwise — three
        # f-strings per frame on the hot path.
        self._cca_name = f"cca/{device_id}"
        self._tx_name = f"mac-tx/{device_id}"
        self._next_name = f"mac-next/{device_id}"

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns False when the queue is full and the frame was dropped
        at admission (the MCU's small frame buffer overflowed).
        """
        if len(self._queue) >= self.queue_limit:
            self.stats.dropped += 1
            if packet.trace_ctx is not None:
                self._trace.mac_drop(packet.trace_ctx, self.device_id,
                                     self.sim.now)
            return False
        self.stats.enqueued += 1
        self._queue.append((packet, self.sim.now))
        if packet.trace_ctx is not None:
            self._trace.mac_enqueue(packet.trace_ctx, packet.packet_id,
                                    self.device_id, self.sim.now)
        depth = len(self._queue)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        if not self._busy:
            self._start_next()
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, enqueue_time = self._queue[0]
        self._attempt(packet, enqueue_time, attempt=0, be=MIN_BE)

    def _refill_backoff_chunks(self) -> List[int]:
        """Prefetch a block of the 32-bit chunks ``integers`` would draw.

        For a power-of-two bound ``w`` ≤ 2**32, ``Generator.integers``
        consumes exactly one 32-bit chunk per draw (Lemire rejection
        never triggers when ``w`` divides 2**32) and computes
        ``(chunk * w) >> 32``; PCG64 serves those chunks as the low then
        high half of each successive uint64.  Drawing the raw uint64s in
        a block and splitting them therefore reproduces the per-call
        sequence bit for bit — verified by
        tests/test_perf_equivalence.  Valid only because this stream has
        no other consumer.
        """
        raw = self._rng.integers(0, 1 << 64, dtype=np.uint64,
                                 size=_BACKOFF_BLOCK)
        chunks = np.empty(2 * _BACKOFF_BLOCK, dtype=np.uint64)
        chunks[0::2] = raw & np.uint64(0xFFFFFFFF)
        chunks[1::2] = raw >> np.uint64(32)
        buf = chunks.tolist()
        self._chunk_buf = buf
        self._chunk_idx = 0
        return buf

    def _attempt(self, packet: Packet, enqueue_time: float,
                 attempt: int, be: int) -> None:
        window = _BACKOFF_WINDOW[be]
        if self._prefetch:
            i = self._chunk_idx
            buf = self._chunk_buf
            if i >= len(buf):
                buf = self._refill_backoff_chunks()
                i = 0
            self._chunk_idx = i + 1
            slots = (buf[i] * window) >> 32
        else:
            # Self-check failed: draw per call, the sequence ``integers``
            # defines rather than the one the prefetch trick predicts.
            slots = int(self._rng.integers(0, window))
        delay = slots * UNIT_BACKOFF_S
        if attempt:
            self.stats.backoffs += 1
        # Direct fire-and-forget push: the delay is provably >= 0 (slot
        # count times a positive constant), so ``post_in``'s validation
        # is dead weight on this several-times-per-frame path.  The
        # attempt's start time rides along in the partial — the trace
        # hook fires once per CCA verdict, never at attempt start.
        sim = self.sim
        sim.queue.push_fire(
            sim.clock.now + delay, PRIORITY_NETWORK,
            partial(self._cca, packet, enqueue_time, attempt, be,
                    sim.clock.now),
            self._cca_name)

    def _cca(self, packet: Packet, enqueue_time: float,
             attempt: int, be: int, attempt_start: float) -> None:
        if self.medium.is_busy():
            self.stats.cca_failures += 1
            if attempt + 1 >= self.max_backoffs:
                # Channel access failure: drop the frame.
                self.stats.dropped += 1
                if packet.trace_ctx is not None:
                    self._trace.mac_cca(packet.packet_id, self.device_id,
                                        attempt_start, self.sim.clock.now,
                                        attempt, True, True)
                self._queue.popleft()
                self._start_next()
                return
            if packet.trace_ctx is not None:
                self._trace.mac_cca(packet.packet_id, self.device_id,
                                    attempt_start, self.sim.clock.now,
                                    attempt, True, False)
            self._attempt(packet, enqueue_time, attempt + 1,
                          min(be + 1, MAX_BE))
            return
        # Channel clear: transmit after the radio turnaround.  Another
        # device whose CCA also passes inside this window will overlap
        # us on the air — the collision mechanism of real CSMA/CA.
        if packet.trace_ctx is not None:
            self._trace.mac_cca(packet.packet_id, self.device_id,
                                attempt_start, self.sim.clock.now,
                                attempt, False, False)
        self._queue.popleft()
        sim = self.sim
        sim.queue.push_fire(
            sim.clock.now + TURNAROUND_S, PRIORITY_NETWORK,
            partial(self._transmit, packet, enqueue_time, attempt),
            self._tx_name)

    def _transmit(self, packet: Packet, enqueue_time: float,
                  attempt: int) -> None:
        self.stats.sent += 1
        self.stats.total_access_delay_s += self.sim.now - enqueue_time
        if packet.trace_ctx is not None:
            self._trace.mac_sent(packet.packet_id, self.device_id,
                                 self.sim.clock.now, attempt)
        self.medium.transmit(packet, self.device_id)
        if self.on_transmit is not None:
            self.on_transmit(packet)
        # Next frame (if any) contends after this one's airtime.
        sim = self.sim
        sim.queue.push_fire(sim.clock.now + packet.airtime_s(),
                            PRIORITY_NETWORK, self._start_next,
                            self._next_name)
