"""Wireless networking substrate and the paper's transmission algorithms.

* ``packet`` / ``medium`` / ``mac`` — an 802.15.4-style broadcast
  channel: 250 kbps airtime, CSMA/CA with random backoff, collision and
  loss modelling, a promiscuous sniffer.
* ``broadcast`` — type-addressed data dissemination: suppliers label
  messages with a data type and broadcast; consumers filter (paper
  §IV-A).
* ``adaptive`` — BT-ADPT: variance-triggered duty cycling of
  battery-powered senders (paper §IV-B).
* ``histogram`` — the constant-memory histogram approximation of the
  variance distribution and Algorithm 1's threshold selection.
* ``schedule`` — AC-device transmission schedule adaptation to
  alleviate channel contention.
* ``energy`` — TelosB energy ledger and battery-lifetime projection.
* ``topology`` / ``multihop`` — the paper's future-work extension:
  building-scale range-limited radio with type-based multicast.
* ``timesync`` — drifting mote clocks and beacon synchronisation.
"""

from repro.net.packet import DataType, Packet, frame_airtime_s
from repro.net.medium import BroadcastMedium, Sniffer
from repro.net.mac import CsmaMac, MacStats
from repro.net.broadcast import TypeBus
from repro.net.adaptive import AdaptiveTransmitter, AdaptivePolicy, SAMPLING_PERIODS
from repro.net.histogram import (
    VarianceHistogram,
    ExactClusterOracle,
    select_threshold,
    histogram_ram_bytes,
    histogram_cpu_seconds,
)
from repro.net.schedule import AcScheduleAdapter, FixedScheduleAdapter
from repro.net.topology import NodePlacement, RadioTopology, corridor_deployment
from repro.net.multihop import (
    FloodingRouter,
    MulticastRouter,
    MultihopMedium,
    build_multicast_trees,
)
from repro.net.timesync import DriftingClock, TimeSyncProtocol
from repro.net.energy import EnergyLedger, BatteryModel, TELOSB_PROFILE

__all__ = [
    "DataType",
    "Packet",
    "frame_airtime_s",
    "BroadcastMedium",
    "Sniffer",
    "CsmaMac",
    "MacStats",
    "TypeBus",
    "AdaptiveTransmitter",
    "AdaptivePolicy",
    "SAMPLING_PERIODS",
    "VarianceHistogram",
    "ExactClusterOracle",
    "select_threshold",
    "histogram_ram_bytes",
    "histogram_cpu_seconds",
    "AcScheduleAdapter",
    "FixedScheduleAdapter",
    "NodePlacement",
    "RadioTopology",
    "corridor_deployment",
    "FloodingRouter",
    "MulticastRouter",
    "MultihopMedium",
    "build_multicast_trees",
    "DriftingClock",
    "TimeSyncProtocol",
    "EnergyLedger",
    "BatteryModel",
    "TELOSB_PROFILE",
]
