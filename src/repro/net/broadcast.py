"""Type-addressed data dissemination (paper §IV-A).

Suppliers broadcast; consumers subscribe to data *types* and filter
everything else out.  ``TypeBus`` is the per-device middleware sitting
between the MAC/medium and the application: it owns the device's
receive handler, dispatches matching packets to subscribers, and tracks
per-type freshness so controllers can detect stale inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.medium import BroadcastMedium
from repro.net.packet import DataType, Packet
from repro.sim.engine import Simulator

Subscriber = Callable[[Packet, str], None]


@dataclass(slots=True)
class CachedValue:
    """Latest value seen for a (type, key) pair."""

    value: Any
    received_at: float
    source: str


class TypeBus:
    """One device's subscription endpoint on the broadcast medium."""

    def __init__(self, sim: Simulator, medium: BroadcastMedium,
                 device_id: str) -> None:
        self.sim = sim
        self.device_id = device_id
        self._subscribers: Dict[DataType, List[Subscriber]] = {}
        self._cache: Dict[Tuple[DataType, Any], CachedValue] = {}
        self.packets_received = 0
        self.packets_filtered = 0
        # Registering the bus itself lets the medium inline the type
        # filter and skip a Python call per uninterested receiver.
        self._medium = medium
        # Causal-trace collector; only consulted for frames carrying a
        # trace_ctx, so untraced delivery pays one attribute test.
        self._trace = sim.obs.trace
        medium.attach_receiver(device_id, self._on_receive, bus=self)

    # ------------------------------------------------------------------
    def subscribe(self, data_type: DataType,
                  handler: Optional[Subscriber] = None) -> None:
        """Express interest in ``data_type``.

        Packets of subscribed types update the freshness cache and are
        handed to ``handler`` when given; all other packets are filtered
        out, exactly as the paper's consumers "filter out messages with
        undesired types".
        """
        handlers = self._subscribers.setdefault(data_type, [])
        if handler is not None:
            handlers.append(handler)
        # The medium precomputes per-(sender, type) delivery plans from
        # the subscription tables; a new subscription stales them.
        self._medium.invalidate_delivery_plans()

    def _on_receive(self, packet: Packet, sender: str) -> None:
        if packet.data_type not in self._subscribers:
            self.packets_filtered += 1
            return
        self.receive_subscribed(packet, sender, self.sim.now)

    def receive_subscribed(self, packet: Packet, sender: str,
                           now: float) -> None:
        """Deliver a packet already known to match a subscription.

        The medium calls this directly after applying the type filter
        inline (see ``BroadcastMedium._complete``; keep the two in sync).
        """
        self.packets_received += 1
        payload = packet.payload
        data_type = packet.data_type
        cache_key = (data_type, payload.get("key"))
        if packet.trace_ctx is not None:
            self._trace.ingest(packet.trace_ctx, self.device_id,
                               cache_key, now)
        entry = self._cache.get(cache_key)
        if entry is None:
            self._cache[cache_key] = CachedValue(
                value=payload.get("value"), received_at=now, source=sender)
        else:
            # Recycle the slot: one reception per frame per subscriber
            # makes this the busiest allocation site of network runs.
            entry.value = payload.get("value")
            entry.received_at = now
            entry.source = sender
        handlers = self._subscribers[data_type]
        if handlers:
            for handler in handlers:
                handler(packet, sender)

    # ------------------------------------------------------------------
    def latest(self, data_type: DataType, key: Any = None) -> Optional[CachedValue]:
        """Most recent cached value for ``(data_type, key)``, or None."""
        return self._cache.get((data_type, key))

    def latest_value(self, data_type: DataType, key: Any = None,
                     default: Optional[float] = None) -> Optional[float]:
        cached = self.latest(data_type, key)
        if cached is None:
            return default
        return cached.value

    def age_of(self, data_type: DataType, key: Any = None) -> Optional[float]:
        """Seconds since the last packet of this type/key, or None."""
        cached = self.latest(data_type, key)
        if cached is None:
            return None
        return self.sim.now - cached.received_at

    def mean_of(self, data_type: DataType, keys: List[Any],
                default: Optional[float] = None) -> Optional[float]:
        """Average of the cached values for ``keys`` that are present.

        Controllers use this to average "a set of sensors deployed in
        the room" (paper §III-B) without requiring every sensor to have
        reported yet.
        """
        values = [self._cache[(data_type, key)].value
                  for key in keys if (data_type, key) in self._cache]
        if not values:
            return default
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Staleness bookkeeping (supplier-loss detection)
    # ------------------------------------------------------------------
    def fresh_values(self, data_type: DataType, keys: List[Any],
                     max_age_s: float) -> List[float]:
        """Cached values for ``keys`` no older than ``max_age_s``.

        The consumer-side view of supplier health: a dead or jammed
        supplier simply stops appearing here, and the caller's average
        narrows to the survivors instead of freezing on stale data.
        """
        now = self.sim.now
        values: List[float] = []
        for key in keys:
            entry = self._cache.get((data_type, key))
            if entry is not None and now - entry.received_at <= max_age_s:
                values.append(entry.value)
        return values

    def oldest_age(self, data_type: DataType,
                   keys: List[Any]) -> Optional[float]:
        """Age of the *stalest* cached entry among ``keys``.

        None until every key has reported at least once — early in a
        run "never heard from" is indistinguishable from "dead", and
        callers must not diagnose supplier loss before first contact.
        """
        now = self.sim.now
        ages: List[float] = []
        for key in keys:
            entry = self._cache.get((data_type, key))
            if entry is None:
                return None
            ages.append(now - entry.received_at)
        return max(ages)
