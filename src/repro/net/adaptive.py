"""BT-ADPT: adaptive sensory-data transmission for battery devices.

Paper §IV-B.  A bt-device samples its sensor every T_spl seconds
(3 s temperature, 2 s humidity, 4 s CO2) and transmits every
T_snd = w * T_spl.  Over a sliding window of recent samples it computes
the variance; a threshold lambda classifies each new variance as
*stable* or *transition*:

* transition  -> w := 1 and the send timer resets immediately;
* stable      -> keep the current period, but after 10 consecutive
  stable sampling periods double w, up to w_max = 32.

lambda is re-learned every 20 minutes from the histogram approximation
(:mod:`repro.net.histogram`); an :class:`~repro.net.histogram.ExactClusterOracle`
runs alongside to score every adaptation decision against the optimal
one — the quantity plotted in the paper's Fig. 12(a) and Fig. 13.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.net.histogram import ExactClusterOracle, VarianceHistogram
from repro.net.packet import DataType

# Sampling periods from paper §IV-B.
SAMPLING_PERIODS = {
    DataType.TEMPERATURE: 3.0,
    DataType.HUMIDITY: 2.0,
    DataType.CO2: 4.0,
}


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tunable constants of BT-ADPT (defaults are the paper's)."""

    sampling_period_s: float = 2.0
    window_size: int = 10          # samples in the variance window
    w_max: int = 32                # maximum T_snd / T_spl multiplier
    stable_periods_to_double: int = 10
    threshold_update_period_s: float = 20.0 * 60.0
    histogram_slots: int = 40      # the paper's default N

    def __post_init__(self) -> None:
        if self.sampling_period_s <= 0:
            raise ValueError("sampling period must be positive")
        if self.window_size < 2:
            raise ValueError("variance window needs at least 2 samples")
        if self.w_max < 1:
            raise ValueError("w_max must be at least 1")
        if self.stable_periods_to_double < 1:
            raise ValueError("stable_periods_to_double must be at least 1")

    @classmethod
    def for_type(cls, data_type: DataType, **overrides) -> "AdaptivePolicy":
        """Policy with the paper's sampling period for ``data_type``."""
        period = SAMPLING_PERIODS.get(data_type, 2.0)
        return cls(sampling_period_s=period, **overrides)


@dataclass
class AdaptationDecision:
    """One classified variance and how both classifiers judged it."""

    time: float
    variance: float
    histogram_unstable: bool
    oracle_unstable: bool
    histogram_threshold: Optional[float]
    oracle_threshold: Optional[float]

    @property
    def matches_oracle(self) -> bool:
        return self.histogram_unstable == self.oracle_unstable


class AdaptiveTransmitter:
    """The per-(device, data-type) BT-ADPT state machine."""

    def __init__(self, name: str, policy: AdaptivePolicy,
                 track_oracle: bool = True) -> None:
        self.name = name
        self.policy = policy
        self.histogram = VarianceHistogram(policy.histogram_slots)
        self.oracle = ExactClusterOracle() if track_oracle else None
        self._window: Deque[float] = deque(maxlen=policy.window_size)
        self._w = 1
        self._stable_streak = 0
        self._threshold: Optional[float] = None
        self._oracle_threshold: Optional[float] = None
        self._last_threshold_update: Optional[float] = None
        self.decisions: List[AdaptationDecision] = []
        self.period_changes: List[tuple] = []  # (time, new_period)

    # ------------------------------------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def send_period_s(self) -> float:
        """Current T_snd = w * T_spl."""
        return self._w * self.policy.sampling_period_s

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    def metrics_summary(self) -> dict:
        """Snapshot for the observability collector (JSON-safe)."""
        return {
            "w": self._w,
            "send_period_s": self.send_period_s,
            "period_changes": len(self.period_changes),
            "decisions": len(self.decisions),
            "threshold": self._threshold,
        }

    # ------------------------------------------------------------------
    def on_sample(self, value: float, now: float) -> Optional[str]:
        """Feed one sensor sample.

        Returns ``"reset"`` when the device must drop T_snd to T_spl and
        restart its send timer immediately, ``"doubled"`` when T_snd just
        doubled, or None when the period is unchanged.
        """
        self._maybe_update_threshold(now)
        self._window.append(float(value))
        if len(self._window) < self.policy.window_size:
            return None
        variance = self._window_variance()
        self.histogram.add(variance)
        if self.oracle is not None:
            self.oracle.add(variance)
        unstable = (self._threshold is not None
                    and variance > self._threshold)
        if self.oracle is not None:
            oracle_unstable = (self._oracle_threshold is not None
                               and variance > self._oracle_threshold)
            self.decisions.append(AdaptationDecision(
                time=now, variance=variance,
                histogram_unstable=unstable,
                oracle_unstable=oracle_unstable,
                histogram_threshold=self._threshold,
                oracle_threshold=self._oracle_threshold))

        if unstable:
            self._stable_streak = 0
            if self._w != 1:
                self._w = 1
                self.period_changes.append((now, self.send_period_s))
                return "reset"
            return "reset"  # timer still resets for prompt updates
        self._stable_streak += 1
        if (self._stable_streak >= self.policy.stable_periods_to_double
                and self._w < self.policy.w_max):
            self._w = min(self._w * 2, self.policy.w_max)
            self._stable_streak = 0
            self.period_changes.append((now, self.send_period_s))
            return "doubled"
        return None

    def _window_variance(self) -> float:
        """Population variance E[X^2] - E[X]^2, as in the paper.

        One explicit pass instead of two ``sum`` calls: same left-to-
        right accumulation order, so the result is bit-identical, minus
        the generator overhead on a per-sample call.
        """
        n = len(self._window)
        total = 0.0
        total_sq = 0.0
        for x in self._window:
            total += x
            total_sq += x * x
        mean = total / n
        mean_sq = total_sq / n
        return max(0.0, mean_sq - mean * mean)

    # ------------------------------------------------------------------
    def _maybe_update_threshold(self, now: float) -> None:
        """Re-learn lambda on the paper's 20-minute cadence."""
        if (self._last_threshold_update is not None
                and now - self._last_threshold_update
                < self.policy.threshold_update_period_s):
            return
        self._last_threshold_update = now
        new_threshold = self.histogram.threshold()
        if new_threshold is not None:
            self._threshold = new_threshold
        if self.oracle is not None:
            oracle_threshold = self.oracle.threshold()
            if oracle_threshold is not None:
                self._oracle_threshold = oracle_threshold

    def force_threshold_update(self, now: float) -> None:
        """Immediate lambda refresh (used by tests and benches)."""
        self._last_threshold_update = None
        self._maybe_update_threshold(now)

    # ------------------------------------------------------------------
    def accuracy(self) -> Optional[float]:
        """Fraction of adaptation decisions matching the oracle."""
        if not self.decisions:
            return None
        matches = sum(1 for d in self.decisions if d.matches_oracle)
        return matches / len(self.decisions)

    def accuracy_series(self, bucket_s: float = 600.0) -> List[tuple]:
        """(bucket_end_time, accuracy) over consecutive time buckets."""
        if not self.decisions:
            return []
        series = []
        start = self.decisions[0].time
        bucket_end = start + bucket_s
        hits = total = 0
        for decision in self.decisions:
            while decision.time > bucket_end:
                if total:
                    series.append((bucket_end, hits / total))
                bucket_end += bucket_s
                hits = total = 0
            hits += 1 if decision.matches_oracle else 0
            total += 1
        if total:
            series.append((bucket_end, hits / total))
        return series
