"""Declarative experiment specifications.

A :class:`ScenarioSpec` is the complete, picklable recipe for one
experiment: the config, the :class:`~repro.scenarios.topology.
SystemTopology` to build, the weather model, the workload script, the
fault program and the horizon.  Every hand-wired experiment in the
repo — the §V-A pulldown, the §V-C network trial, campaign cells,
sweep seeds, bench trials, golden-fingerprint trials — reduces to one
of these records, registered by name in
:mod:`repro.scenarios.registry`.

Scripts and weather models hold bound callables and are therefore
referenced by *name* (resolved through :data:`SCRIPT_BUILDERS` and
:data:`WEATHER_BUILDERS` inside the worker) so a spec stays small and
spawn-safe.  Execution is split into :func:`prepare_run` (build the
system, schedule workload and faults) and :func:`run_scenario`
(prepare, run to the horizon, finalize), so front-ends that need the
live system mid-run — the CLI's chunked progress loop, the bench
harness — can reuse the exact same assembly path as the one-shot
executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.config import BubbleZeroConfig
from repro.physics.weather import TropicalWeather, WeatherModel
from repro.scenarios.topology import SystemTopology, paper_topology
from repro.workloads.events import (
    paper_phase_two_events,
    periodic_disturbance_events,
)
from repro.workloads.faults import Fault, FaultScript, shift_fault

# Workload scripts are registered by name: an EventScript holds bound
# callables and is rebuilt inside the worker, never pickled.  Each
# builder takes (start_s, horizon_s) of the run about to execute.
SCRIPT_BUILDERS = {
    "none": lambda start_s, horizon_s: None,
    "paper-phase-two":
        lambda start_s, horizon_s: paper_phase_two_events(),
    "periodic-disturbance":
        lambda start_s, horizon_s: periodic_disturbance_events(
            start_s, horizon_s),
}

# Weather models by name.  "config" returns None so the system builds
# its default ConstantWeather from config.outdoor — byte-identical to
# every pre-registry assembly path.  Builders take the spec's config so
# stochastic models derive their seed from the run's seed.
WEATHER_BUILDERS = {
    "config": lambda config: None,
    "tropical": lambda config: TropicalWeather(seed=config.seed),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named experiment: everything needed to rebuild and run it.

    ``faults`` carries inline cell-relative faults; ``fault_script``
    names a registry-registered (and pre-validated) fault program.
    Both may be set — the registry script's faults apply first.  The
    fault-script *name* is resolved lazily at run time, so specs can be
    constructed while the registry module itself is still importing.
    """

    name: str
    description: str = ""
    config: BubbleZeroConfig = field(default_factory=BubbleZeroConfig)
    topology: SystemTopology = field(default_factory=paper_topology)
    weather: str = "config"
    script: str = "none"
    fault_script: str = "none"
    faults: Tuple[Fault, ...] = ()
    run_minutes: float = 45.0
    warmup_minutes: float = 0.0
    controller: str = "pid"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.script not in SCRIPT_BUILDERS:
            raise ValueError(
                f"unknown workload script {self.script!r}; known: "
                f"{', '.join(sorted(SCRIPT_BUILDERS))}")
        from repro.control.policy import controller_names
        if self.controller not in controller_names():
            raise ValueError(
                f"unknown controller {self.controller!r}; known: "
                f"{', '.join(sorted(controller_names()))}")
        if self.weather not in WEATHER_BUILDERS:
            raise ValueError(
                f"unknown weather model {self.weather!r}; known: "
                f"{', '.join(sorted(WEATHER_BUILDERS))}")
        if self.run_minutes <= 0:
            raise ValueError("runs must have positive length")
        if not 0 <= self.warmup_minutes < self.run_minutes:
            raise ValueError("warmup must fit inside the run")

    def resolve_faults(self) -> Tuple[Fault, ...]:
        """The complete fault list: named script first, inline after."""
        if self.fault_script == "none":
            return self.faults
        from repro.scenarios.registry import get_fault_script
        return tuple(get_fault_script(self.fault_script).faults) + self.faults

    def build_weather(self) -> Optional[WeatherModel]:
        """The weather model, or None for the config-driven default."""
        return WEATHER_BUILDERS[self.weather](self.config)

    def describe(self) -> str:
        """Multi-line human-readable summary (``repro scenarios``)."""
        from repro.workloads.faults import describe_faults

        lines = [f"scenario: {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"  seed: {self.config.seed}")
        lines.append(
            f"  topology: {self.topology.name} "
            f"({self.topology.zone_count} zones, "
            f"{self.topology.panel_count} panels)")
        lines.append(f"  weather: {self.weather}")
        lines.append(f"  script: {self.script}")
        from repro.control.policy import describe_controller
        lines.append("  " + describe_controller(self.controller)
                     .replace("\n", "\n  "))
        mode = ("direct" if not self.config.network.enabled
                else self.config.network.bt_mode)
        lines.append(f"  network: {mode}")
        lines.append(
            f"  horizon: {self.run_minutes:g} min "
            f"(warmup {self.warmup_minutes:g} min)")
        if self.fault_script != "none":
            lines.append(f"  fault script: {self.fault_script}")
        if self.faults:
            lines.append(f"  faults: {describe_faults(self.faults)}")
        return "\n".join(lines)


def build_system(spec: ScenarioSpec, obs=None):
    """A fresh :class:`~repro.core.system.BubbleZero` for the spec."""
    from repro.core.system import BubbleZero

    return BubbleZero(spec.config, weather=spec.build_weather(),
                      obs=obs, topology=spec.topology,
                      controller=spec.controller)


def prepare_run(spec: ScenarioSpec, obs=None):
    """Build the system and schedule workload and faults.

    Returns ``(system, clearance_time)`` with the system unstarted, so
    callers can attach meters or sniffers before ``system.start()``.
    ``clearance_time`` is the absolute instant the last self-clearing
    fault ends (None without self-clearing faults) — the hook recovery
    scoring keys on.
    """
    system = build_system(spec, obs=obs)
    start = system.sim.now
    horizon_s = spec.run_minutes * 60.0
    script = SCRIPT_BUILDERS[spec.script](start, horizon_s)
    if script is not None:
        system.schedule_script(script)
    clearance: Optional[float] = None
    faults = spec.resolve_faults()
    if faults:
        fault_script = FaultScript(
            [shift_fault(fault, start) for fault in faults])
        # Registry-named scripts were roster-validated at registration;
        # inline faults still get the atomic pre-flight check.
        fault_script.apply_to(
            system, validate=bool(spec.faults)
            or spec.fault_script == "none")
        clearance = fault_script.clearance_time()
    return system, clearance


def run_scenario(spec: ScenarioSpec, obs=None):
    """Prepare, run to the spec's horizon and finalize; returns the
    finished system for scoring/fingerprinting."""
    system, _ = prepare_run(spec, obs=obs)
    system.start()
    system.run(minutes=spec.run_minutes)
    system.finalize()
    return system
