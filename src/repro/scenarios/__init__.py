"""Declarative scenario layer: topologies, specs and the registry.

``repro.scenarios.topology`` sits below :mod:`repro.core` in the import
graph (the plant builds itself from a topology), so this package's
``__init__`` must stay import-light: only the topology symbols load
eagerly.  The spec and registry layers — which import the core back —
resolve lazily on first attribute access (PEP 562), keeping
``from repro.scenarios import get_scenario`` convenient without a
cycle.
"""

from repro.scenarios.topology import (
    SystemTopology,
    grid_topology,
    paper_topology,
)

_LAZY = {
    "ScenarioSpec": "repro.scenarios.spec",
    "SCRIPT_BUILDERS": "repro.scenarios.spec",
    "WEATHER_BUILDERS": "repro.scenarios.spec",
    "build_system": "repro.scenarios.spec",
    "prepare_run": "repro.scenarios.spec",
    "run_scenario": "repro.scenarios.spec",
    "describe_scenario": "repro.scenarios.registry",
    "fault_script_names": "repro.scenarios.registry",
    "get_fault_script": "repro.scenarios.registry",
    "get_scenario": "repro.scenarios.registry",
    "register_fault_script": "repro.scenarios.registry",
    "register_scenario": "repro.scenarios.registry",
    "scenario_names": "repro.scenarios.registry",
}

__all__ = [
    "SystemTopology",
    "grid_topology",
    "paper_topology",
    *sorted(_LAZY),
]


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
