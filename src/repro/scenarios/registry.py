"""The named experiment registry.

Every hand-wired experiment in the repo is registered here as a
:class:`~repro.scenarios.spec.ScenarioSpec` under a stable name: the
paper's §V-A pulldown and §V-C network trial, the COP and lifetime
figures, the fault-campaign baseline and every campaign cell, the
sweep and bench trial shapes, the golden-fingerprint trials, and the
scaled-out demonstration topologies.  Front-ends (:mod:`repro.cli`,
:mod:`repro.runtime`, :mod:`repro.workloads.campaign`,
:mod:`repro.workloads.sweep`, :mod:`repro.bench`,
``tests/golden/regenerate.py``) look experiments up by name instead of
re-assembling them, so there is exactly one definition of each.

Fault programs are registered separately (``quick/<cell>`` and
``full/<cell>`` namespaces) and roster-validated **once** at
registration time against the topology's declared device roster — a
typo in a device id fails at import, not twenty minutes into a
campaign.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BubbleZeroConfig, NetworkConfig
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.topology import (
    SystemTopology,
    grid_topology,
    paper_topology,
)
from repro.workloads.chaos import quick_hazard, synthesize_faults
from repro.workloads.faults import (
    ChannelJam,
    Fault,
    FaultScript,
    NodeCrash,
    SensorDrift,
    SensorStuck,
)

_FAULT_SCRIPTS: Dict[str, FaultScript] = {}
_SCENARIOS: Dict[str, ScenarioSpec] = {}


# ----------------------------------------------------------------------
# Registration and lookup
# ----------------------------------------------------------------------
def register_fault_script(
        name: str, faults: Sequence[Fault],
        topology: Optional[SystemTopology] = None) -> FaultScript:
    """Register a named fault program, validating it immediately
    against ``topology``'s device roster (the paper topology by
    default)."""
    if name in _FAULT_SCRIPTS:
        raise ValueError(f"fault script {name!r} already registered")
    script = FaultScript(list(faults))
    topo = topology if topology is not None else paper_topology()
    script.validate_roster(topo.sensor_node_ids())
    _FAULT_SCRIPTS[name] = script
    return script


def get_fault_script(name: str) -> FaultScript:
    try:
        return _FAULT_SCRIPTS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault script {name!r}; known: "
            f"{', '.join(fault_script_names()) or '(none)'}") from None


def fault_script_names() -> List[str]:
    return sorted(_FAULT_SCRIPTS)


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a spec under its own name; the name must be fresh and
    any referenced fault script must already be registered."""
    if spec.name in _SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    if spec.fault_script != "none":
        get_fault_script(spec.fault_script)
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}") from None


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def describe_scenario(name: str) -> str:
    return get_scenario(name).describe()


# ----------------------------------------------------------------------
# Campaign cell fault programs (shared with repro.workloads.campaign)
# ----------------------------------------------------------------------
def quick_cell_faults(
        onset_s: float = 1800.0,
        clear_s: float = 2100.0) -> List[Tuple[str, Tuple[Fault, ...]]]:
    """The fast ≥8-cell matrix behind ``repro campaign --quick``.

    Covers every fault class, both severities of the jam, and two
    compound programs — including the humidity blackout that must latch
    the supervisor's conservative mode.
    """
    return [
        ("stuck-high", (
            SensorStuck(onset_s, "bt-room-temp-0", 35.0, until=clear_s),)),
        ("stuck-low", (
            SensorStuck(onset_s, "bt-room-temp-1", 15.0, until=clear_s),)),
        ("drift-humidity", (
            SensorDrift(onset_s, "bt-room-hum-0", 20.0, until=clear_s),)),
        ("drift-temp", (
            SensorDrift(onset_s, "bt-room-temp-2", 3.0, until=clear_s),)),
        ("crash-room-temp", (
            NodeCrash(onset_s, "bt-room-temp-3"),)),
        ("crash-ceil-hum", (
            NodeCrash(onset_s, "bt-ceil-hum-0"),)),
        ("jam-light", (
            ChannelJam(onset_s, onset_s + 300.0, duty=0.3),)),
        ("jam-heavy", (
            ChannelJam(onset_s, onset_s + 300.0, duty=0.9),)),
        ("compound-crash-jam", (
            NodeCrash(onset_s, "bt-room-hum-2"),
            ChannelJam(clear_s, clear_s + 180.0, duty=0.9))),
        ("compound-hum-blackout", (
            NodeCrash(onset_s, "bt-ceil-hum-1"),
            NodeCrash(onset_s, "bt-room-hum-1"))),
    ]


def full_cell_faults(
        onsets_s: Tuple[float, ...] = (1800.0, 2400.0),
        stuck_values: Tuple[float, ...] = (15.0, 35.0),
        drift_offsets: Tuple[float, ...] = (3.0, 10.0),
        jam_duties: Tuple[float, ...] = (0.3, 0.9),
        fault_duration_s: float = 600.0
) -> List[Tuple[str, Tuple[Fault, ...]]]:
    """Severity x onset sweep of every fault class, plus compounds."""
    cells: List[Tuple[str, Tuple[Fault, ...]]] = []
    for onset in onsets_s:
        clear = onset + fault_duration_s
        for value in stuck_values:
            cells.append((f"stuck-{value:g}@{onset:g}s", (
                SensorStuck(onset, "bt-room-temp-0", value, until=clear),)))
        for offset in drift_offsets:
            cells.append((f"drift-{offset:+g}@{onset:g}s", (
                SensorDrift(onset, "bt-room-hum-0", offset, until=clear),)))
        for device in ("bt-room-temp-3", "bt-ceil-hum-0"):
            cells.append((f"crash-{device}@{onset:g}s",
                          (NodeCrash(onset, device),)))
        for duty in jam_duties:
            cells.append((f"jam-{duty:.0%}@{onset:g}s", (
                ChannelJam(onset, clear, duty=duty),)))
        cells.append((f"compound-blackout@{onset:g}s", (
            NodeCrash(onset, "bt-ceil-hum-1"),
            NodeCrash(onset, "bt-room-hum-1"))))
        cells.append((f"compound-stuck-jam@{onset:g}s", (
            SensorStuck(onset, "bt-room-temp-0", 35.0, until=clear),
            ChannelJam(onset, onset + 300.0, duty=0.9))))
    return cells


# ----------------------------------------------------------------------
# The roster
# ----------------------------------------------------------------------
def _register_all() -> None:
    paper_config = BubbleZeroConfig(seed=7)

    register_scenario(ScenarioSpec(
        name="paper-va",
        description="§V-A temperature pulldown with the 14:05/14:25 "
                    "door events (Fig. 9/10)",
        config=paper_config,
        script="paper-phase-two",
        run_minutes=105.0,
        warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="paper-vc",
        description="§V-C five-hour network trial: BT-ADPT under "
                    "periodic door/window disturbances (Fig. 13/14)",
        config=paper_config,
        script="periodic-disturbance",
        run_minutes=300.0,
        warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="steady-state",
        description="disturbance-free pulldown at the paper's seed",
        config=paper_config,
        run_minutes=105.0,
        warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="paper-cop",
        description="steady-state COP measurement window (Fig. 11): "
                    "40 min pulldown, then a 20 min metered window",
        config=paper_config,
        run_minutes=60.0))

    for mode in ("adaptive", "fixed"):
        register_scenario(ScenarioSpec(
            name=f"lifetime-{mode}",
            description=f"battery-life projection under the {mode} "
                        "transmission scheme (Fig. 15)",
            config=BubbleZeroConfig(
                seed=7, network=NetworkConfig(bt_mode=mode)),
            script="periodic-disturbance",
            run_minutes=120.0))

    register_scenario(ScenarioSpec(
        name="golden-hvac-va",
        description="truncated §V-A trial behind the committed "
                    "hvac_va golden fingerprint",
        config=paper_config,
        script="paper-phase-two",
        run_minutes=75.0))

    register_scenario(ScenarioSpec(
        name="golden-network-vc",
        description="truncated §V-C trial behind the committed "
                    "network_vc golden fingerprint",
        config=BubbleZeroConfig(
            seed=7, network=NetworkConfig(bt_mode="adaptive")),
        script="periodic-disturbance",
        run_minutes=75.0))

    register_scenario(ScenarioSpec(
        name="campaign-baseline",
        description="fault-free reference run every campaign cell is "
                    "scored against",
        config=paper_config,
        run_minutes=45.0,
        warmup_minutes=30.0))

    for cell_name, faults in quick_cell_faults():
        register_fault_script(f"quick/{cell_name}", faults)
        register_scenario(ScenarioSpec(
            name=f"campaign/quick/{cell_name}",
            description="quick-matrix campaign cell",
            config=paper_config,
            fault_script=f"quick/{cell_name}",
            run_minutes=45.0,
            warmup_minutes=30.0))
    for cell_name, faults in full_cell_faults():
        register_fault_script(f"full/{cell_name}", faults)
        register_scenario(ScenarioSpec(
            name=f"campaign/full/{cell_name}",
            description="full-matrix campaign cell",
            config=paper_config,
            fault_script=f"full/{cell_name}",
            run_minutes=60.0,
            warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="sweep-default",
        description="per-seed replicate shape behind `repro sweep` "
                    "(the seed is replaced per replicate)",
        config=BubbleZeroConfig(seed=1),
        run_minutes=105.0,
        warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="bench-parallel",
        description="per-seed run shape of the bench parallel fan-out "
                    "section",
        config=BubbleZeroConfig(seed=1),
        run_minutes=45.0))

    register_scenario(ScenarioSpec(
        name="tropical-day",
        description="paper layout under the sinusoidal tropical "
                    "weather model instead of constant design-day air",
        config=paper_config,
        weather="tropical",
        run_minutes=105.0,
        warmup_minutes=30.0))

    # Scaling demonstration: a whole 8-zone floor is one declaration.
    register_scenario(ScenarioSpec(
        name="eight-zone",
        description="8-zone (2x4 grid) floor built from grid_topology "
                    "— the N-zone scaling demonstration",
        config=paper_config,
        topology=grid_topology(8, cols=4),
        run_minutes=30.0))

    # Direct-mode grid trials behind the vectorized-core scaling bench
    # (`repro bench --grid`) and the lockstep seed-replication lane
    # (repro.runtime.lockstep).  Tropical weather makes the seed reach
    # the physics, so replicated seeds produce distinct trajectories
    # even without the network stack's sensor-noise RNG.
    # The 512/1024-zone entries opt into the structured eigh solver
    # (config.physics_solver): dense inv/eig/inv on a (3, n, n) system
    # at those sizes dominates the run, while the symmetrised solver
    # keeps the factorisation tractable at the cost of roundoff-level
    # divergence from the dense reference oracle.
    for zones, cols, solver in ((4, 2, "dense"), (8, 4, "dense"),
                                (32, 8, "dense"), (128, 16, "dense"),
                                (512, 16, "structured"),
                                (1024, 32, "structured")):
        tag = ("vector-core scaling trial" if solver == "dense"
               else "large-grid structured-solver trial")
        register_scenario(ScenarioSpec(
            name=f"grid-{zones}",
            description=f"{zones}-zone direct-control grid under "
                        f"tropical weather ({tag})",
            config=BubbleZeroConfig(
                seed=7, network=NetworkConfig(enabled=False),
                physics_solver=solver),
            topology=grid_topology(zones, cols=cols),
            weather="tropical",
            run_minutes=10.0))

    # Chaos endurance bases (repro.workloads.chaos).  Unlike grid-*,
    # the network stack stays enabled — the hazard process addresses bt
    # sensor nodes and jams the shared channel, neither of which exists
    # in direct mode.  Run length and warmup are replaced per
    # ChaosConfig; the registered horizons are only the defaults.
    register_scenario(ScenarioSpec(
        name="chaos-paper",
        description="paper 4-zone layout under the seeded hazard "
                    "process (48 h endurance default)",
        config=paper_config,
        run_minutes=2880.0,
        warmup_minutes=30.0))

    for zones, cols in ((8, 4), (32, 8)):
        register_scenario(ScenarioSpec(
            name=f"chaos-grid-{zones}",
            description=f"{zones}-zone network-mode grid under "
                        "tropical weather for chaos endurance sweeps",
            config=paper_config,
            topology=grid_topology(zones, cols=cols),
            weather="tropical",
            run_minutes=2880.0,
            warmup_minutes=30.0))

    register_scenario(ScenarioSpec(
        name="chaos-quick",
        description="short chaos base behind the CI smoke and the "
                    "serial-vs-pooled byte-identity tests",
        config=paper_config,
        run_minutes=30.0,
        warmup_minutes=5.0))

    # A frozen 20-minute synthesized schedule behind the chaos golden,
    # registered (and thus roster-validated) like every other fault
    # program so the golden regenerates through the registry alone.
    register_fault_script(
        "chaos/quick",
        synthesize_faults(paper_topology(), quick_hazard(), seed=7,
                          horizon_s=1200.0).faults)
    register_scenario(ScenarioSpec(
        name="golden-chaos-quick",
        description="20-minute quick-cell chaos run behind the "
                    "committed chaos_quick golden fingerprint and "
                    "chaos_slo golden report",
        config=paper_config,
        fault_script="chaos/quick",
        run_minutes=20.0,
        warmup_minutes=5.0))

    # Controller bake-off cells: every registered control stack crossed
    # with the paper lab and the 8/32-zone grids, network mode, so the
    # comparison includes each stack's real channel load (the consensus
    # stack's zone-to-zone frames are part of its cost).  Horizons are
    # defaults; BakeoffConfig replaces run length and seed per run.
    from repro.control.policy import controller_names
    for ctrl in controller_names():
        register_scenario(ScenarioSpec(
            name=f"bakeoff/{ctrl}/paper",
            description=f"{ctrl} stack on the paper 4-zone lab "
                        "(bake-off cell)",
            config=paper_config,
            controller=ctrl,
            run_minutes=45.0,
            warmup_minutes=10.0))
        for zones, cols in ((8, 4), (32, 8)):
            register_scenario(ScenarioSpec(
                name=f"bakeoff/{ctrl}/{zones}z",
                description=f"{ctrl} stack on the {zones}-zone "
                            "network-mode grid under tropical weather "
                            "(bake-off cell)",
                config=paper_config,
                topology=grid_topology(zones, cols=cols),
                weather="tropical",
                controller=ctrl,
                run_minutes=45.0,
                warmup_minutes=10.0))


_register_all()
