"""Declarative building topology: zones, panels, rosters, coupling.

A :class:`SystemTopology` is the single data-driven description of a
building that the whole stack assembles itself from: the room model
takes the footprint and the inter-zone coupling graph, the plant takes
the panel->zone map and the door/window exposure weights, the network
stack derives the sensor-node and control-board rosters, and the radio
layer places every device on the floor plan.  The default instance is
the paper's BubbleZERO laboratory (6 m x 5 m x 2 m, four zones in a
2x2 grid, two radiant panels each serving one row of the grid); an
8- or 32-zone building is one :func:`grid_topology` call away.

This module deliberately imports nothing from the rest of ``repro`` so
every layer — including :mod:`repro.core.plant`, which sits near the
bottom of the import graph — can depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

# Neighbouring zones exchange openness at this per-step falloff in
# grid_topology's distance-decay exposure model.
_EXPOSURE_DECAY = 0.3


@dataclass(frozen=True)
class SystemTopology:
    """Frozen description of one building; defaults are the paper lab.

    ``panel_zones`` maps each radiant ceiling panel to the tuple of
    zones it serves and must partition the zones exactly.  ``adjacency``
    is the undirected inter-zone coupling graph (conduction + bulk air
    mixing).  ``door_weights`` / ``window_weights`` split a door or
    window opening's bulk air exchange across zones by proximity to the
    opening (paper §V-A); each must sum to one.  ``zone_centers`` are
    (x, y) metres on the floor plan, used for radio placement.
    """

    name: str = "bubblezero-lab"
    zone_count: int = 4
    length_m: float = 6.0
    width_m: float = 5.0
    height_m: float = 2.0
    panel_zones: Tuple[Tuple[int, ...], ...] = ((0, 1), (2, 3))
    adjacency: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 3), (2, 3))
    door_weights: Tuple[float, ...] = (0.55, 0.30, 0.09, 0.06)
    window_weights: Tuple[float, ...] = (0.09, 0.06, 0.55, 0.30)
    zone_centers: Tuple[Tuple[float, float], ...] = (
        (1.5, 1.25), (4.5, 1.25), (1.5, 3.75), (4.5, 3.75))
    equipment_w: float = 40.0

    def __post_init__(self) -> None:
        # Normalise nested sequences to tuples so instances hash, pickle
        # and compare by value regardless of how they were declared.
        object.__setattr__(self, "panel_zones",
                           tuple(tuple(zones) for zones in self.panel_zones))
        object.__setattr__(self, "adjacency",
                           tuple(tuple(pair) for pair in self.adjacency))
        object.__setattr__(self, "door_weights", tuple(self.door_weights))
        object.__setattr__(self, "window_weights", tuple(self.window_weights))
        object.__setattr__(self, "zone_centers",
                           tuple(tuple(c) for c in self.zone_centers))
        if self.zone_count < 1:
            raise ValueError("a building needs at least one zone")
        if min(self.length_m, self.width_m, self.height_m) <= 0:
            raise ValueError("building dimensions must be positive")
        served = [z for zones in self.panel_zones for z in zones]
        if sorted(served) != list(range(self.zone_count)):
            raise ValueError(
                "panel_zones must serve every zone exactly once; got "
                f"{self.panel_zones} for {self.zone_count} zones")
        seen = set()
        for i, j in self.adjacency:
            if i == j or not (0 <= i < self.zone_count
                              and 0 <= j < self.zone_count):
                raise ValueError(f"adjacency pair ({i}, {j}) is out of range")
            key = (min(i, j), max(i, j))
            if key in seen:
                raise ValueError(f"duplicate adjacency pair ({i}, {j})")
            seen.add(key)
        for label, weights in (("door", self.door_weights),
                               ("window", self.window_weights)):
            if len(weights) != self.zone_count:
                raise ValueError(f"{label}_weights must list every zone")
            if min(weights) < 0:
                raise ValueError(f"{label}_weights must be non-negative")
            if not math.isclose(sum(weights), 1.0, rel_tol=0, abs_tol=1e-9):
                raise ValueError(f"{label}_weights must sum to 1")
        if len(self.zone_centers) != self.zone_count:
            raise ValueError("zone_centers must list every zone")
        for x, y in self.zone_centers:
            if not (0 <= x <= self.length_m and 0 <= y <= self.width_m):
                raise ValueError(
                    f"zone center ({x}, {y}) lies outside the footprint")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def panel_count(self) -> int:
        return len(self.panel_zones)

    @property
    def volume_m3(self) -> float:
        return self.length_m * self.width_m * self.height_m

    @property
    def zone_volume_m3(self) -> float:
        return self.volume_m3 / self.zone_count

    def panel_of(self, zone: int) -> int:
        """Index of the radiant panel serving ``zone``."""
        for panel, zones in enumerate(self.panel_zones):
            if zone in zones:
                return panel
        raise ValueError(f"zone {zone} out of range")

    def neighbors(self, zone: int) -> Tuple[int, ...]:
        """Zones coupled to ``zone`` (the graph is undirected)."""
        out = []
        for i, j in self.adjacency:
            if i == zone:
                out.append(j)
            elif j == zone:
                out.append(i)
        return tuple(out)

    # ------------------------------------------------------------------
    # Device rosters — the exact ids the system assembles, in the exact
    # construction order, so fault scripts and radio placements can be
    # validated against a topology without building a live system.
    # ------------------------------------------------------------------
    def sensor_node_ids(self) -> Tuple[str, ...]:
        return tuple(
            f"bt-{place}-{kind}-{i}"
            for i in range(self.zone_count)
            for place, kind in (("room", "temp"), ("room", "hum"),
                                ("ceil", "temp"), ("ceil", "hum")))

    def board_ids(self) -> Tuple[str, ...]:
        singletons = ("control-c1", "control-c2", "control-v1")
        per_zone = tuple(f"control-v{v}-{i}"
                         for i in range(self.zone_count) for v in (2, 3))
        return singletons + per_zone

    def device_ids(self) -> Tuple[str, ...]:
        return self.sensor_node_ids() + self.board_ids()

    def describe(self) -> str:
        lines = [
            f"topology {self.name}: {self.zone_count} zone(s), "
            f"{self.length_m:g} x {self.width_m:g} x {self.height_m:g} m "
            f"({self.volume_m3:g} m^3)",
            f"  panels: " + "; ".join(
                f"panel-{p} -> zones {zones}"
                for p, zones in enumerate(self.panel_zones)),
            f"  coupling graph: {self.adjacency}",
            f"  door weights: {self.door_weights}",
            f"  window weights: {self.window_weights}",
            f"  devices: {len(self.sensor_node_ids())} sensor nodes, "
            f"{len(self.board_ids())} boards",
        ]
        return "\n".join(lines)


_PAPER = SystemTopology()


def paper_topology() -> SystemTopology:
    """The BubbleZERO laboratory of the paper (shared frozen instance)."""
    return _PAPER


def grid_topology(zone_count: int,
                  cols: Optional[int] = None,
                  name: Optional[str] = None,
                  zone_length_m: float = 3.0,
                  zone_width_m: float = 2.5,
                  height_m: float = 2.0,
                  door_zone: int = 0,
                  window_zone: Optional[int] = None,
                  equipment_w: float = 40.0) -> SystemTopology:
    """Declare an N-zone row-major grid building in one call.

    Zones are laid out row-major over ``cols`` columns; consecutive
    zone pairs share a radiant panel (a trailing odd zone gets its own).
    Door/window exposure decays geometrically with Manhattan distance
    from ``door_zone`` / ``window_zone`` (default: the far corner),
    normalised to sum to one.  ``grid_topology(4, cols=2)`` has the
    paper lab's footprint and coupling graph with generated weights.
    """
    if zone_count < 1:
        raise ValueError("a building needs at least one zone")
    if cols is None:
        cols = max(1, math.ceil(math.sqrt(zone_count)))
    rows = math.ceil(zone_count / cols)
    if window_zone is None:
        window_zone = zone_count - 1

    def cell(zone: int) -> Tuple[int, int]:
        return zone // cols, zone % cols

    adjacency = []
    for zone in range(zone_count):
        row, col = cell(zone)
        if col + 1 < cols and zone + 1 < zone_count:
            adjacency.append((zone, zone + 1))
        if zone + cols < zone_count:
            adjacency.append((zone, zone + cols))

    def exposure(anchor: int) -> Tuple[float, ...]:
        raw = []
        for zone in range(zone_count):
            d = (abs(cell(zone)[0] - cell(anchor)[0])
                 + abs(cell(zone)[1] - cell(anchor)[1]))
            raw.append(_EXPOSURE_DECAY ** d)
        total = sum(raw)
        return tuple(w / total for w in raw)

    panel_zones = tuple(
        tuple(range(start, min(start + 2, zone_count)))
        for start in range(0, zone_count, 2))
    centers = tuple(((cell(z)[1] + 0.5) * zone_length_m,
                     (cell(z)[0] + 0.5) * zone_width_m)
                    for z in range(zone_count))
    return SystemTopology(
        name=name or f"grid-{zone_count}",
        zone_count=zone_count,
        length_m=cols * zone_length_m,
        width_m=rows * zone_width_m,
        height_m=height_m,
        panel_zones=panel_zones,
        adjacency=tuple(adjacency),
        door_weights=exposure(door_zone),
        window_weights=exposure(window_zone),
        zone_centers=centers,
        equipment_w=equipment_w,
    )
