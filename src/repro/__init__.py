"""repro — a full reproduction of *Energy Efficient HVAC System with
Distributed Sensing and Control* (BubbleZERO, ICDCS 2014).

The package simulates the complete BubbleZERO stack: the laboratory's
thermal/moisture/CO2 physics, the hydronic radiant-cooling and
distributed-ventilation hardware, the sensing and control boards, and
the 802.15.4 wireless network with the paper's adaptive transmission
algorithms (BT-ADPT and histogram-based threshold learning).

Quickstart::

    from repro import BubbleZero, BubbleZeroConfig

    system = BubbleZero(BubbleZeroConfig(seed=7))
    system.run(hours=1.0)
    print(system.plant.room.mean_temp_c())
"""

from repro.core import (
    BubbleZero,
    BubbleZeroConfig,
    ComfortConfig,
    NetworkConfig,
    OutdoorConfig,
    Plant,
)

__version__ = "1.0.0"

__all__ = [
    "BubbleZero",
    "BubbleZeroConfig",
    "ComfortConfig",
    "NetworkConfig",
    "OutdoorConfig",
    "Plant",
    "__version__",
]
