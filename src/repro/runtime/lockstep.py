"""Lockstep seed-replication batches: one master engine, ``(R, zone)`` math.

Sweep and bench campaigns replicate one scenario across seeds.  In
direct (wired) control the seed reaches the trajectory only through the
weather model, so every replica shares the master's *event timeline* —
the same control periods, the same event-free gaps, the same macro tick
counts — while its numbers differ.  This module exploits that: replica 0
("the master") runs as a completely normal, bit-exact solo system, and
the remaining R replicas are never started at all.  Instead the master
calls back into :class:`LockstepBatch` after every physics firing and
every direct control step (see ``BubbleZero.attach_lockstep``), and the
batch advances all R replicas as ``(R,)``- and ``(R, zone)``-shaped
numpy expressions — a second structure-of-arrays axis on top of the
per-zone one :mod:`repro.physics.vector` introduced.

Exactness contract — weaker than the solo vector path, deliberately:

* The master's trajectory is untouched: it runs its own engine, scalar
  controllers and :class:`~repro.physics.vector.VectorPlantKernel`, so
  its discrete log hash and golden fingerprints stay bit-identical to a
  solo run.
* Replica math is a faithful *batched transcription* of the scalar
  component models (same expressions, same branch structure via masks)
  with one physical relaxation: within each one-second tick every
  radiant panel and every vent coil reads the **tick-start** tank
  temperature instead of threading the tank serially through the
  panel/unit chain, and the summed returns are applied to the tank once
  per tick.  The substitution error is bounded by one tick of tank
  drift (microkelvin per read), so replica trajectories agree with
  their solo runs to roughly 1e-3 K over a trial — close enough for
  sweep screening, far from bitwise.  It is what buys the throughput:
  the whole tick becomes ``(R, zone)``-wide vector arithmetic with no
  per-unit Python loop.  Everything is still deterministic: same seeds,
  same batch, same results, run after run.
* Replicas share the master's gap pattern.  That is exactly what a solo
  run of the same scenario produces anyway (the schedule is built from
  periods, not from state), so no replica sees a coarser integration
  than it would solo.

The payoff is throughput: one process macro-steps a whole
seed-replication batch in lockstep, and the per-gap cost grows far
slower than linearly in the batch size (the eigensolve cache is shared
across replicas; the tick loop is R-wide vector arithmetic).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.airside.airbox import AirboxOutput
from repro.airside.fan import FAN_SPEED_TABLE
from repro.control.condensation import (
    HOLD_MARGIN_K,
    PULLDOWN_MARGIN_K,
    PULLDOWN_TRIGGER_K,
)
from repro.control.ventilation import CONTROL_HORIZON_S
from repro.core.plant import CONDENSER_APPROACH_K
from repro.hydronics.panel import PanelResult
from repro.hydronics.water import WATER_CP, WATER_DENSITY
from repro.physics import spectral
from repro.physics.psychrometrics import (
    dew_point_from_humidity_ratio_array,
    humidity_ratio_from_dew_point_array,
    moist_air_enthalpy_array,
)
from repro.physics.room import (
    AIR_CP,
    AIR_DENSITY,
    OCCUPANT_CO2_M3S,
    OCCUPANT_LATENT_KGS,
    OCCUPANT_SENSIBLE_W,
)
from repro.scenarios.spec import ScenarioSpec, prepare_run

_FAN_FLOWS = np.array([row[1] for row in FAN_SPEED_TABLE])
_FAN_POWERS = np.array([row[2] for row in FAN_SPEED_TABLE])

def _batch_pid(integral: np.ndarray, last: np.ndarray, meas: np.ndarray,
               dt: float, kp: float, ki: float, kd: float,
               lo: float, hi: float):
    """Vectorised :meth:`PIDController.update` (setpoint 0).

    ``last`` uses NaN where the scalar controller holds ``None``.
    Returns ``(new_integral, new_last, output)``.
    """
    error = -meas
    proportional = kp * error
    have_last = ~np.isnan(last)
    with np.errstate(invalid="ignore"):
        derivative = np.where(have_last, -kd * ((meas - last) / dt), 0.0)
    candidate = integral + ki * error * dt
    unclamped = proportional + candidate + derivative
    sat_hi = unclamped > hi
    sat_lo = unclamped < lo
    inside = ~sat_hi & ~sat_lo
    moving_inward = (sat_hi & (error < 0)) | (sat_lo & (error > 0))
    new_integral = np.where(inside | moving_inward, candidate, integral)
    output = np.clip(proportional + new_integral + derivative, lo, hi)
    return new_integral, meas, output


def _pump_flow(voltage, max_flow, max_v, dead):
    """Vectorised :meth:`PumpCurve.flow_at`."""
    span = max_v - dead
    flow = max_flow * (np.minimum(voltage, max_v) - dead) / span
    return np.where(voltage <= dead, 0.0, flow)


def _pump_voltage(flow, max_flow, max_v, dead):
    """Vectorised :meth:`PumpCurve.voltage_for`."""
    span = max_v - dead
    volts = dead + span * np.minimum(flow, max_flow) / max_flow
    return np.where(flow <= 0, 0.0, volts)


def _pump_power(flow_lps, rated, standby, head, efficiency):
    """Vectorised :meth:`DCPump.electrical_power_w`."""
    flow_m3s = flow_lps * 1e-3
    powered = np.minimum(rated, standby + flow_m3s * head / efficiency)
    return np.where(flow_m3s <= 0, standby, powered)


class LockstepBatch:
    """Drive ``1 + R`` seed replicas of one scenario off one engine.

    ``seeds[0]`` becomes the master (a normal solo system, bit-exact);
    the rest are built but never started — their state lives in the
    ``(R, ...)`` arrays here and is written back into their component
    objects by :meth:`run`, so meters, fingerprints and scoring read
    the finished replicas exactly as if each had run solo.
    """

    def __init__(self, spec: ScenarioSpec, seeds: Sequence[int],
                 obs=None) -> None:
        if len(seeds) < 1:
            raise ValueError("need at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValueError("seeds must be distinct")
        config = spec.config
        if config.network.enabled:
            raise ValueError(
                "lockstep batching requires direct (wired) control; "
                "networked replicas do not share the master's timeline")
        if not (config.physics_vector and config.physics_macro_step):
            raise ValueError(
                "lockstep batching requires physics_vector and "
                "physics_macro_step")
        if spec.script != "none" or spec.fault_script != "none" or spec.faults:
            raise ValueError(
                "lockstep batching supports fault-free, scriptless "
                "scenarios only (workload events would have to fire on "
                "every replica's own schedule)")
        if spec.controller != "pid":
            raise ValueError(
                "lockstep batching transcribes the reference pid law; "
                f"controller {spec.controller!r} cannot be batched")
        self.spec = spec
        self.seeds = list(seeds)
        self.specs = [
            dataclasses.replace(
                spec, config=dataclasses.replace(config, seed=seed))
            for seed in seeds
        ]
        built = [prepare_run(s, obs=obs if k == 0 else None)
                 for k, s in enumerate(self.specs)]
        self.systems = [system for system, _clearance in built]
        self.master = self.systems[0]
        self.replicas = self.systems[1:]
        self._r = len(self.replicas)
        self._finalized = False
        if self._r:
            self._init_batch_state()
        self.master.attach_lockstep(self)

    # ------------------------------------------------------------------
    # Batch state
    # ------------------------------------------------------------------
    def _init_batch_state(self) -> None:
        reps = self.replicas
        R = self._r
        master_plant = self.master.plant
        room = master_plant.room
        topo = master_plant.topology
        n = len(room.subspaces)
        P = len(master_plant.panel_loops)
        self._n = n
        self._np = P

        def stack(reader):
            return np.array([reader(rep) for rep in reps], dtype=np.float64)

        # Zone state, (R, n).
        self._T = stack(lambda s: s.plant._vector_kernel.arrays.temp_c)
        self._W = stack(
            lambda s: s.plant._vector_kernel.arrays.humidity_ratio)
        self._C = stack(lambda s: s.plant._vector_kernel.arrays.co2_ppm)

        # Tanks and chillers, (R,).
        def tank_state(pick):
            temp = stack(lambda s: pick(s.plant).temp_c)
            ein = stack(lambda s: pick(s.plant).energy_in_j)
            hret = stack(lambda s: pick(s.plant).heat_returned_j)
            gain = stack(lambda s: pick(s.plant).ambient_gain_j)
            chill = np.array([pick(s.plant)._chilling for s in reps])
            ce = stack(lambda s: pick(s.plant).chiller.energy_j)
            chm = stack(lambda s: pick(s.plant).chiller.heat_moved_j)
            return [temp, ein, hret, gain, chill, ce, chm]

        self._r_tank = tank_state(lambda p: p.radiant_tank)
        self._v_tank = tank_state(lambda p: p.vent_tank)
        rtank = master_plant.radiant_tank
        vtank = master_plant.vent_tank
        self._r_mass = rtank.thermal_mass_j_per_k
        self._v_mass = vtank.thermal_mass_j_per_k
        self._r_ua = rtank.ambient_ua_w_per_k
        self._v_ua = vtank.ambient_ua_w_per_k
        self._r_hi = rtank.setpoint_c + rtank.deadband_k
        self._r_lo = rtank.setpoint_c - rtank.deadband_k
        self._v_hi = vtank.setpoint_c + vtank.deadband_k
        self._v_lo = vtank.setpoint_c - vtank.deadband_k
        self._r_cap = rtank.chiller.capacity_w
        self._v_cap = vtank.chiller.capacity_w
        self._r_par = rtank.chiller.parasitic_w
        self._v_par = vtank.chiller.parasitic_w
        self._r_chillers = [s.plant.radiant_tank.chiller for s in reps]
        self._v_chillers = [s.plant.vent_tank.chiller for s in reps]
        self._cop_key = np.full(R, np.nan)
        self._r_cop = np.zeros(R)
        self._v_cop = np.zeros(R)
        self._weathers = [s.plant.weather for s in reps]

        # Radiant loops, (R, P) state plus (P,) constants.
        loops = list(master_plant.panel_loops)
        self._p_served = [np.array(topo.panel_zones[p]) for p in range(P)]
        self._serve_len = np.array(
            [float(len(z)) for z in self._p_served])
        self._serve_mat = np.zeros((P, n))
        for p in range(P):
            self._serve_mat[p, self._p_served[p]] = 1.0
        self._p_ua = np.array([lp.panel.ua_w_per_k for lp in loops])
        self._p_film = np.array(
            [lp.panel.surface_film_fraction for lp in loops])
        sp = [lp.supply_pump for lp in loops]
        self._p_maxf = np.array([p.curve.max_flow_lps for p in sp])
        self._p_maxv = np.array([p.curve.max_voltage for p in sp])
        self._p_dead = np.array([p.curve.deadband_v for p in sp])
        self._p_rated = np.array([p.rated_power_w for p in sp])
        self._p_standby = np.array([p.standby_power_w for p in sp])
        self._p_head = np.array([p.head_pa for p in sp])
        self._p_peff = np.array([p.efficiency for p in sp])

        def loop_stack(reader):
            return np.array([[reader(lp) for lp in s.plant.panel_loops]
                             for s in reps], dtype=np.float64)

        self._p_rt = loop_stack(lambda lp: lp.return_temp_c)
        self._p_heat_abs = loop_stack(lambda lp: lp.panel.heat_absorbed_j)
        self._p_sup_e = loop_stack(lambda lp: lp.supply_pump.energy_j)
        self._p_rcy_e = loop_stack(lambda lp: lp.recycle_pump.energy_j)
        self._p_sup_v = loop_stack(lambda lp: lp.supply_pump._voltage)
        self._p_rcy_v = loop_stack(lambda lp: lp.recycle_pump._voltage)
        self._p_last_heat = np.zeros((R, P))
        self._p_last_ret = np.zeros((R, P))
        self._p_last_surf = np.zeros((R, P))
        self._p_last_mixt = np.zeros((R, P))
        self._p_last_total = np.zeros((R, P))
        self._p_last_eff = np.zeros((R, P))

        # Vent units, (R, n) state plus (n,) constants.
        units = list(master_plant.vent_units)
        self._u_maxwf = np.array(
            [u.airbox.coil.max_water_flow_lps for u in units])
        self._u_drop = np.array(
            [u.airbox.coil.dew_drop_per_lps for u in units])
        self._u_appr = np.array([u.airbox.coil.approach_k for u in units])
        self._u_bf1 = np.array(
            [1.0 - u.airbox.coil.bypass_factor for u in units])
        self._u_reheat_k = np.array(
            [u.airbox.SUPPLY_REHEAT_K for u in units])
        self._u_tau = np.array(
            [u.airbox.COIL_FLOW_TAU_S for u in units])
        self._u_motor_pw = np.array([u.flap.motor_power_w for u in units])
        self._u_travel = np.array([u.flap.travel_time_s for u in units])
        cp = [u.airbox.coil_pump for u in units]
        self._c_maxf = np.array([p.curve.max_flow_lps for p in cp])
        self._c_maxv = np.array([p.curve.max_voltage for p in cp])
        self._c_dead = np.array([p.curve.deadband_v for p in cp])
        self._c_rated = np.array([p.rated_power_w for p in cp])
        self._c_standby = np.array([p.standby_power_w for p in cp])
        self._c_head = np.array([p.head_pa for p in cp])
        self._c_peff = np.array([p.efficiency for p in cp])

        def unit_stack(reader):
            return np.array([[reader(u) for u in s.plant.vent_units]
                             for s in reps], dtype=np.float64)

        self._u_eff = unit_stack(
            lambda u: u.airbox._coil_flow_effective_lps)
        self._u_heat_e = unit_stack(lambda u: u.airbox.coil.heat_extracted_j)
        self._u_fan_e = unit_stack(lambda u: u.airbox.fans.energy_j)
        self._u_pump_e = unit_stack(lambda u: u.airbox.coil_pump.energy_j)
        self._u_pump_v = unit_stack(lambda u: u.airbox.coil_pump._voltage)
        self._u_flap_pos = unit_stack(lambda u: u.flap._position)
        self._u_flap_tgt = unit_stack(lambda u: u.flap._target)
        self._u_flap_e = unit_stack(lambda u: u.flap.energy_j)
        self._u_fan_step = np.array(
            [[u.airbox.fans.speed_step for u in s.plant.vent_units]
             for s in reps], dtype=np.int64)
        self._u_supt = np.zeros((R, n))
        self._u_supw = np.zeros((R, n))
        self._u_eflow = np.zeros((R, n))
        self._u_last_dew = np.zeros((R, n))
        self._u_last_heat = np.zeros((R, n))
        self._u_last_waterT = np.zeros((R, n))
        self._u_last_flow = np.zeros((R, n))
        self._u_last_fan_pw = np.zeros((R, n))

        # Guard / plant accumulators, (R,).
        self._g_margin = master_plant.guard.margin_k
        self._g_worst = stack(lambda s: s.plant.guard.worst_margin_k)
        self._g_viol = np.array(
            [s.plant.guard.violations for s in reps], dtype=np.int64)
        self._cond_ev = np.array(
            [s.plant.room.condensation_events for s in reps],
            dtype=np.int64)
        self._fan_acc = stack(lambda s: s.plant.fan_energy_j)
        self._time_int = stack(lambda s: s.plant.time_integrated_s)

        # Boundary terms frozen for the whole run: occupants, equipment
        # and openings can only change through workload scripts or API
        # calls, both excluded by the constructor's validation.
        occupants = np.array(master_plant.occupants, dtype=np.float64)
        equipment = np.array(master_plant.equipment_w, dtype=np.float64)
        for s in reps:
            if (list(s.plant.occupants) != list(master_plant.occupants)
                    or list(s.plant.equipment_w)
                    != list(master_plant.equipment_w)
                    or s.plant.door_open_fraction
                    != master_plant.door_open_fraction
                    or s.plant.window_open_fraction
                    != master_plant.window_open_fraction):
                raise ValueError("replicas must share boundary conditions")
        door_f = master_plant.door_open_fraction
        w08 = 0.8 * master_plant.window_open_fraction
        opening = np.array(
            [door_f * topo.door_weights[i] + w08 * topo.window_weights[i]
             for i in range(n)])
        self._occ_sens = occupants * OCCUPANT_SENSIBLE_W + equipment
        self._occ_lat = occupants * OCCUPANT_LATENT_KGS
        self._occ_co2 = occupants * OCCUPANT_CO2_M3S * 1e6

        # Room constants (shared across replicas by construction).
        params = room.params
        self._envelope_ua = params.envelope_ua_w_per_k
        self._capacity = params.capacity_j_per_k
        self._buffer = params.moisture_buffer_factor
        self._coupling_ua = params.coupling_ua_w_per_k
        self._mixing_flow = params.mixing_flow_m3s
        self._m_mix = room._m_mix
        self._mc_mix = room._mc_mix
        self._infil = np.array(room._infil_flows)
        self._water_masses = np.array(room._water_masses)
        self._volumes = np.array([s.volume_m3 for s in room.subspaces])
        self._max_euler_dt = room._max_euler_dt
        door_flow = opening * params.door_exchange_m3s
        self._g_exch = self._infil + door_flow
        self._m_exch = self._g_exch * AIR_DENSITY
        self._macro_base = room._macro_base
        self._macro_scale = room._macro_scale
        self._macro_key = room._macro_key
        self._solver = room._solver
        edges = np.array(room.adjacency, dtype=np.int64).reshape(-1, 2)
        self._adj_i = edges[:, 0]
        self._adj_j = edges[:, 1]
        incidence = np.zeros((len(edges), n))
        for e, (i, j) in enumerate(edges):
            incidence[e, i] = 1.0
            incidence[e, j] = -1.0
        self._incidence = incidence

        # Control constants, read from the master's direct controllers.
        rad = self.master._radiant_direct[0]
        if rad.conservative_extra_margin_k != 0.0:
            raise ValueError("supervisor margin must be inactive")
        self._rad_pref = rad.preferred_temp_c
        self._rad_margin = rad.dew_margin_k
        g = rad.pid.gains
        self._rad_kp, self._rad_ki, self._rad_kd = g.kp, g.ki, g.kd
        self._rad_lo, self._rad_hi = rad.pid.output_limits
        vent = self.master._vent_direct[0]
        self._pref_dew = vent.preferred_dew_point()
        self._co2_target = vent.co2_target_ppm
        self._min_fresh = vent.min_fresh_air_m3s
        self._dew_deadband = vent.dew_deadband_k
        g = vent.pid.gains
        self._vent_kp, self._vent_ki, self._vent_kd = g.kp, g.ki, g.kd
        self._vent_lo, self._vent_hi = vent.pid.output_limits
        self._vols = np.array(
            [c.subspace_volume_m3 for c in self.master._vent_direct])
        self._outdoor_co2_const = 400.0  # VentilationInputs default

        self._rad_int = np.zeros((R, P))
        self._rad_last = np.full((R, P), np.nan)
        self._vent_int = np.zeros((R, n))
        self._vent_last = np.full((R, n), np.nan)

        self._gap_count = 0
        self._alpha_cache: Dict[float, np.ndarray] = {}
        self._out_t = np.zeros(R)
        self._out_w = np.zeros(R)
        self._out_c = np.zeros(R)

    # ------------------------------------------------------------------
    # Master seam: physics
    # ------------------------------------------------------------------
    def on_gap(self, now: float, ticks: int, dt: float) -> None:
        """Advance every replica over the master's event-free gap."""
        if not self._r:
            return
        R = self._r
        n = self._n
        P = self._np
        macro = ticks > 1
        self._gap_count += 1

        for r, weather in enumerate(self._weathers):
            st = weather.state_at(now)
            self._out_t[r] = st.temp_c
            self._out_w[r] = st.humidity_ratio
            self._out_c[r] = st.co2_ppm
        out_t = self._out_t
        out_w = self._out_w
        out_c = self._out_c
        reject = out_t + CONDENSER_APPROACH_K
        stale = reject != self._cop_key
        if stale.any():
            for r in np.nonzero(stale)[0]:
                self._cop_key[r] = reject[r]
                self._r_cop[r] = self._r_chillers[r].cop_at(reject[r])
                self._v_cop[r] = self._v_chillers[r].cop_at(reject[r])

        T = self._T
        W = self._W
        in_dew = dew_point_from_humidity_ratio_array(out_w)
        h_in = moist_air_enthalpy_array(out_t, out_w)
        dew_z = dew_point_from_humidity_ratio_array(W)
        if macro:
            ambient = T.mean(axis=1)

        # Per-gap derived actuation quantities (pump curves, exchanger
        # effectiveness, fan tables) — vector ops are cheap enough to
        # recompute unconditionally instead of tracking dirtiness.
        fsupp = _pump_flow(self._p_sup_v, self._p_maxf, self._p_maxv,
                           self._p_dead)
        frcyc = _pump_flow(self._p_rcy_v, self._p_maxf, self._p_maxv,
                           self._p_dead)
        total = fsupp + frcyc
        act = total > 0
        total_safe = np.where(act, total, 1.0)
        mcp = (total * 1e-3 * WATER_DENSITY) * WATER_CP
        mcp_safe = np.where(act, mcp, 1.0)
        effectiveness = np.where(
            act, 1.0 - np.exp(-self._p_ua / mcp_safe), 0.0)
        emcp = effectiveness * mcp_safe
        sup_on = fsupp > 0
        mf_supp = np.where(sup_on, fsupp * 1e-3 * WATER_DENSITY, 0.0)
        mwc = (mf_supp * dt) * WATER_CP
        sup_pd = _pump_power(fsupp, self._p_rated, self._p_standby,
                             self._p_head, self._p_peff) * dt
        rcy_pd = _pump_power(frcyc, self._p_rated, self._p_standby,
                             self._p_head, self._p_peff) * dt
        p_zt = np.empty((R, P))
        p_dew = np.empty((R, P))
        for p in range(P):
            served = self._p_served[p]
            p_zt[:, p] = T[:, served].mean(axis=1)
            p_dew[:, p] = dew_z[:, served].max(axis=1)
        self._p_last_total = total
        self._p_last_eff = effectiveness

        fanflow = _FAN_FLOWS[self._u_fan_step]
        fan_pw = _FAN_POWERS[self._u_fan_step]
        # Damper: open passes the fan flow; closed leaks nothing in
        # still air (leakage * wind_leak with wind_leak 0).
        u_flow = fanflow
        mass_air = u_flow * AIR_DENSITY
        reheat = np.where(u_flow > 0, self._u_reheat_k, 0.0)
        pumpflow = _pump_flow(self._u_pump_v, self._c_maxf, self._c_maxv,
                              self._c_dead)
        pump_pd = _pump_power(pumpflow, self._c_rated, self._c_standby,
                              self._c_head, self._c_peff) * dt
        fan_pd = fan_pw * dt
        alpha = self._alpha_cache.get(dt)
        if alpha is None:
            alpha = 1.0 - (np.zeros(n) if dt == 0
                           else np.exp(-dt / self._u_tau))
            self._alpha_cache[dt] = alpha
        flap_rate = dt / self._u_travel
        flap_pd = self._u_motor_pw * dt
        self._u_last_flow = u_flow
        self._u_last_fan_pw = fan_pw

        r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm = self._r_tank
        v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm = self._v_tank
        g_worst = self._g_worst
        g_viol = self._g_viol
        cond_ev = self._cond_ev
        fan_acc = self._fan_acc
        rt = self._p_rt
        heat_abs = self._p_heat_abs
        eff = self._u_eff
        flap_pos = self._u_flap_pos
        flap_tgt = self._u_flap_tgt

        if macro:
            heat_sum = np.zeros((R, n))
            flow_sum = np.zeros((R, n))
            flow_t_sum = np.zeros((R, n))
            flow_w_sum = np.zeros((R, n))
            t_sum = np.zeros((R, n))
            w_sum = np.zeros((R, n))

        serve_mat = self._serve_mat
        for _ in range(ticks):
            # --- radiant panels, all (R, P) at once --------------------
            # The scalar chain threads the tank temperature through the
            # panels serially; here every panel reads the tick-start
            # tank temperature and the summed returns are applied once
            # per tick.  The difference is bounded by one tick of tank
            # drift (microkelvin), inside the batch lane's tolerance.
            r_tc = r_t[:, None]
            mix_t = np.where(act, (fsupp * r_tc + frcyc * rt) / total_safe,
                             r_tc)
            heat_w = emcp * (p_zt - mix_t)
            return_t = mix_t + heat_w / mcp_safe
            heat_abs += np.where(act & (heat_w > 0), heat_w * dt, 0.0)
            new_rt = np.where(act, return_t,
                              rt + (p_zt - rt) * dt / 600.0)
            heat_j = np.where(act & sup_on, mwc * (return_t - r_tc), 0.0)
            r_dq = heat_j.sum(axis=1)
            r_t = r_t + r_dq / self._r_mass
            r_ein = r_ein + r_dq
            r_hret = r_hret + np.where(heat_j > 0, heat_j, 0.0).sum(axis=1)
            heat_act = np.where(act, heat_w, 0.0)
            tick_ph = (heat_act / self._serve_len) @ serve_mat
            mean_water = 0.5 * (mix_t + return_t)
            surface = mean_water + self._p_film * (p_zt - mean_water)
            margin = surface - p_dew
            g_worst = np.minimum(
                g_worst, np.where(act, margin, np.inf).min(axis=1))
            viol = act & (margin < self._g_margin)
            nviol = viol.sum(axis=1)
            g_viol = g_viol + nviol
            cond_ev = cond_ev + nviol
            self._p_last_heat = heat_act
            self._p_last_ret = np.where(act, return_t, mix_t)
            self._p_last_surf = np.where(act, surface, p_zt)
            self._p_last_mixt = mix_t
            self._p_sup_e += sup_pd
            self._p_rcy_e += rcy_pd
            rt = new_rt

            # --- vent units, all (R, n) at once ------------------------
            # Same relaxation for the vent tank: every coil reads the
            # tick-start water temperature.
            waterT = v_t[:, None]
            eff = eff + alpha * (pumpflow - eff)
            off = (u_flow == 0) | (eff == 0)
            wf = np.minimum(eff, self._u_maxwf)
            in_dew_c = in_dew[:, None]
            o_dew = np.maximum(in_dew_c - self._u_drop * wf,
                               waterT + self._u_appr)
            o_dew = np.minimum(o_dew, in_dew_c)
            o_w = humidity_ratio_from_dew_point_array(o_dew)
            o_w = np.minimum(o_w, out_w[:, None])
            wetness = wf / self._u_maxwf
            apparatus = waterT + self._u_appr * (1.0 - wetness)
            contact = self._u_bf1 * wetness
            out_tc = out_t[:, None]
            o_temp = out_tc - contact * (out_tc - apparatus)
            o_temp = np.maximum(o_temp, o_dew)
            heat_w = np.maximum(
                0.0, mass_air
                * (h_in[:, None] - moist_air_enthalpy_array(o_temp, o_w)))
            o_temp = np.where(off, out_tc, o_temp)
            o_w = np.where(off, out_w[:, None], o_w)
            o_dew = np.where(off, in_dew_c, o_dew)
            heat_w = np.where(off, 0.0, heat_w)
            sup_t = o_temp + reheat
            self._u_heat_e += heat_w * dt
            self._u_fan_e += fan_pd
            self._u_pump_e += pump_pd

            tgt = flap_tgt
            moving = np.abs(tgt - flap_pos) > 1e-9
            pos = np.where(flap_pos < tgt,
                           np.minimum(tgt, flap_pos + flap_rate),
                           np.where(flap_pos > tgt,
                                    np.maximum(tgt, flap_pos - flap_rate),
                                    flap_pos))
            self._u_flap_e += np.where(moving, flap_pd, 0.0)
            flap_pos = pos

            e_flow = u_flow * (0.25 + 0.75 * pos)
            cm = (eff > 0) & (heat_w > 0)
            mf = eff * 1e-3 * WATER_DENSITY
            m_cp = np.where(cm, mf * WATER_CP, 1.0)
            coil_return = waterT + heat_w / m_cp
            heat_j = np.where(cm, (mf * dt) * WATER_CP
                              * (coil_return - waterT), 0.0)
            v_dq = heat_j.sum(axis=1)
            v_t = v_t + v_dq / self._v_mass
            v_ein = v_ein + v_dq
            v_hret = v_hret + np.where(heat_j > 0, heat_j, 0.0).sum(axis=1)
            fan_acc = fan_acc + fan_pd.sum(axis=1)

            self._u_supt = sup_t
            self._u_supw = o_w
            self._u_eflow = e_flow
            self._u_last_dew = o_dew
            self._u_last_heat = heat_w
            self._u_last_waterT = np.broadcast_to(
                waterT, (R, n)).copy()
            if macro:
                heat_sum += tick_ph
                flow_sum += e_flow
                flow_t_sum += e_flow * sup_t
                flow_w_sum += e_flow * o_w
                t_sum += sup_t
                w_sum += o_w

            if macro:
                r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm = (
                    _tank_tick_batch(
                        r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm,
                        dt, ambient, self._r_ua, self._r_mass, self._r_hi,
                        self._r_lo, self._r_cap, self._r_par, self._r_cop))
                v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm = (
                    _tank_tick_batch(
                        v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm,
                        dt, ambient, self._v_ua, self._v_mass, self._v_hi,
                        self._v_lo, self._v_cap, self._v_par, self._v_cop))

        if macro:
            flow = flow_sum / ticks
            has = flow_sum > 0
            denom = np.where(has, flow_sum, 1.0)
            sup_t_avg = np.where(has, flow_t_sum / denom, t_sum / ticks)
            sup_w_avg = np.where(has, flow_w_sum / denom, w_sum / ticks)
            heat_avg = heat_sum / ticks
            self._advance_rooms_macro(ticks * dt, flow, sup_t_avg,
                                      sup_w_avg, heat_avg,
                                      out_t, out_w, out_c)
        else:
            self._euler_advance(None, dt, out_t, out_w, out_c,
                                self._u_eflow, self._u_supt, self._u_supw,
                                tick_ph)
            ambient = self._T.mean(axis=1)
            r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm = (
                _tank_tick_batch(
                    r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm,
                    dt, ambient, self._r_ua, self._r_mass, self._r_hi,
                    self._r_lo, self._r_cap, self._r_par, self._r_cop))
            v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm = (
                _tank_tick_batch(
                    v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm,
                    dt, ambient, self._v_ua, self._v_mass, self._v_hi,
                    self._v_lo, self._v_cap, self._v_par, self._v_cop))

        self._r_tank = [r_t, r_ein, r_hret, r_gain, r_chill, r_ce, r_chm]
        self._v_tank = [v_t, v_ein, v_hret, v_gain, v_chill, v_ce, v_chm]
        self._p_rt = rt
        self._u_eff = eff
        self._u_flap_pos = flap_pos
        self._g_worst = g_worst
        self._g_viol = g_viol
        self._cond_ev = cond_ev
        self._fan_acc = fan_acc
        self._time_int = self._time_int + ticks * dt

    # ------------------------------------------------------------------
    def _decomposition(self, diag_row: np.ndarray) -> Optional[tuple]:
        """One replica's gap decomposition, via the shared spectral cache.

        Replicas of the same scenario mostly agree on their steady-state
        actuation pattern, so the batch resolves a handful of distinct
        diagonals per run — and shares them with any solo run of the
        same topology in this process.
        """
        return spectral.decomposition(self._macro_key, diag_row,
                                      self._macro_base,
                                      self._macro_scale, self._solver)

    def _advance_rooms_macro(self, dt: float, flow, sup_t, sup_w,
                             panel_heat, out_t, out_w, out_c) -> None:
        """Closed-form room advance for all replicas over one macro gap.

        Groups replicas by their diagonal-loss vector so one shared
        eigendecomposition propagates a whole group; replicas whose
        trajectory touches a clamp floor (or whose algebra degenerates)
        drop to the per-tick Euler transcription, mirroring
        :meth:`Room.macro_step`'s fallback.
        """
        R = self._r
        m_vent = flow * AIR_DENSITY
        diag = np.empty((R, 3, self._n))
        rhs = np.empty((R, 3, self._n))
        diag[:, 0] = self._envelope_ua + (m_vent + self._m_exch) * AIR_CP
        rhs[:, 0] = ((self._envelope_ua + self._m_exch * AIR_CP)
                     * out_t[:, None]
                     + m_vent * AIR_CP * sup_t
                     + self._occ_sens - panel_heat)
        diag[:, 1] = m_vent + self._m_exch
        rhs[:, 1] = (m_vent * sup_w + self._m_exch * out_w[:, None]
                     + self._occ_lat)
        g = flow + self._g_exch
        diag[:, 2] = g
        rhs[:, 2] = g * out_c[:, None] + self._occ_co2
        x0 = np.stack([self._T, self._W, self._C], axis=1)
        co2_floor = out_c * 0.5

        groups: Dict[bytes, List[int]] = {}
        for r in range(R):
            groups.setdefault(diag[r].tobytes(), []).append(r)
        fallback: List[int] = []
        for members in groups.values():
            decomp = self._decomposition(diag[members[0]])
            if decomp is None:
                fallback.extend(members)
                continue
            a_inv, vals, vecs, vecs_inv = decomp
            sel = np.array(members)
            rhs_g = rhs[sel] / self._macro_scale
            x0_g = x0[sel]
            x_eq = -(a_inv @ rhs_g[..., None])[..., 0]
            y0 = vecs_inv @ (x0_g - x_eq)[..., None].astype(vecs.dtype)
            new = ((vecs @ (np.exp(vals * dt)[..., None] * y0))
                   [..., 0] + x_eq).real
            mid = ((vecs @ (np.exp(vals * (0.5 * dt))[..., None] * y0))
                   [..., 0] + x_eq).real
            ok = ((new[:, 1].min(axis=1) >= 1e-5)
                  & (mid[:, 1].min(axis=1) >= 1e-5)
                  & (x0_g[:, 1].min(axis=1) > 1e-5)
                  & (new[:, 2].min(axis=1) >= co2_floor[sel])
                  & (mid[:, 2].min(axis=1) >= co2_floor[sel])
                  & (x0_g[:, 2].min(axis=1) > co2_floor[sel]))
            good = sel[ok]
            self._T[good] = new[ok][:, 0]
            self._W[good] = new[ok][:, 1]
            self._C[good] = new[ok][:, 2]
            fallback.extend(int(r) for r in sel[~ok])
        if fallback:
            sel = np.array(sorted(fallback))
            self._euler_advance(sel, dt, out_t[sel], out_w[sel],
                                out_c[sel], flow[sel], sup_t[sel],
                                sup_w[sel], panel_heat[sel])

    def _euler_advance(self, sel: Optional[np.ndarray], dt: float,
                       out_t, out_w, out_c, flow, sup_t, sup_w,
                       panel_heat) -> None:
        """Batched :meth:`Room.step` (per-tick Euler with floor clamps)."""
        if sel is None:
            T, W, C = self._T, self._W, self._C
        else:
            T, W, C = self._T[sel], self._W[sel], self._C[sel]
        ai = self._adj_i
        aj = self._adj_j
        inc = self._incidence
        m_vent = flow * AIR_DENSITY
        co2_floor = (out_c * 0.5)[:, None]
        out_t = out_t[:, None]
        out_w = out_w[:, None]
        out_c = out_c[:, None]
        remaining = float(dt)
        while remaining > 1e-12:
            sub_dt = min(self._max_euler_dt, remaining)
            delta_t = T[:, aj] - T[:, ai]
            q_pair = self._coupling_ua * delta_t + self._mc_mix * delta_t
            d_temp = q_pair @ inc
            d_w = (self._m_mix * (W[:, aj] - W[:, ai])) @ inc
            d_co2 = (self._mixing_flow * (C[:, aj] - C[:, ai])) @ inc

            q = (d_temp + self._envelope_ua * (out_t - T)
                 + self._occ_sens - panel_heat
                 + m_vent * AIR_CP * (sup_t - T)
                 + self._m_exch * AIR_CP * (out_t - T))
            new_t = T + sub_dt * q / self._capacity

            mw = (d_w * self._buffer + m_vent * (sup_w - W)
                  + self._m_exch * (out_w - W) + self._occ_lat)
            new_w = np.maximum(W + sub_dt * mw / self._water_masses, 1e-5)

            c = (d_co2 + flow * (out_c - C) + self._g_exch * (out_c - C)
                 + self._occ_co2)
            new_c = np.maximum(C + sub_dt * c / self._volumes, co2_floor)

            T, W, C = new_t, new_w, new_c
            remaining -= sub_dt
        if sel is None:
            self._T, self._W, self._C = T, W, C
        else:
            self._T[sel] = T
            self._W[sel] = W
            self._C[sel] = C

    # ------------------------------------------------------------------
    # Master seam: control
    # ------------------------------------------------------------------
    def on_control(self, now: float) -> None:
        """Run every replica's direct control step (batched)."""
        if not self._r:
            return
        from repro.devices.boards import CONTROL_PERIOD_S
        dt = float(CONTROL_PERIOD_S)
        T = self._T
        W = self._W
        C = self._C
        supply = self._r_tank[0]
        room_temp = T.mean(axis=1)
        dew_z = dew_point_from_humidity_ratio_array(W)

        # --- radiant module, (R, P) ------------------------------------
        P = self._np
        ceil_dew = np.empty((self._r, P))
        for p in range(P):
            ceil_dew[:, p] = dew_z[:, self._p_served[p]].max(axis=1)
        supply_c = supply[:, None]
        mix_temp = np.maximum(supply_c, ceil_dew + self._rad_margin)
        ret = self._p_rt
        achievable = np.maximum(supply_c, ret)
        blocked = mix_temp > achievable + 1e-9
        delta = self._rad_pref - room_temp[:, None]
        new_int, new_last, flow_target = _batch_pid(
            self._rad_int, self._rad_last, delta, dt,
            self._rad_kp, self._rad_ki, self._rad_kd,
            self._rad_lo, self._rad_hi)
        self._rad_int = np.where(blocked, 0.0, new_int)
        self._rad_last = np.where(blocked, np.nan, new_last)
        lo = np.minimum(supply_c, ret)
        hi = np.maximum(supply_c, ret)
        target = np.minimum(np.maximum(mix_temp, lo), hi)
        same = np.abs(ret - supply_c) < 1e-9
        denom = np.where(same, 1.0, ret - supply_c)
        frac = np.clip((target - supply_c) / denom, 0.0, 1.0)
        f_rcyc = np.where(same, 0.0, flow_target * frac)
        f_supp = flow_target - f_rcyc
        sup_v = _pump_voltage(f_supp, self._p_maxf, self._p_maxv,
                              self._p_dead)
        rcy_v = _pump_voltage(f_rcyc, self._p_maxf, self._p_maxv,
                              self._p_dead)
        self._p_sup_v = np.where(blocked, 0.0, sup_v)
        self._p_rcy_v = np.where(blocked, 0.0, rcy_v)

        # --- ventilation module, (R, n) --------------------------------
        room_target = np.minimum(self._pref_dew, supply)[:, None]
        pulldown = dew_z - room_target > PULLDOWN_TRIGGER_K
        supply_target = np.where(pulldown,
                                 room_target - PULLDOWN_MARGIN_K,
                                 room_target - HOLD_MARGIN_K)
        if self._gap_count == 0:
            airbox_dew = dew_z
        else:
            airbox_dew = np.where(self._u_last_flow == 0,
                                  dew_z, self._u_last_dew)
        proxy = supply_target - airbox_dew
        new_int, new_last, coil_flow = _batch_pid(
            self._vent_int, self._vent_last, proxy, dt,
            self._vent_kp, self._vent_ki, self._vent_kd,
            self._vent_lo, self._vent_hi)
        self._vent_int = new_int
        self._vent_last = new_last

        wet = dew_z - room_target > self._dew_deadband
        current_w = humidity_ratio_from_dew_point_array(dew_z)
        target_w = humidity_ratio_from_dew_point_array(room_target)
        supply_w = humidity_ratio_from_dew_point_array(
            np.maximum(supply_target, airbox_dew - 5.0))
        surplus = current_w - target_w
        leverage = current_w - supply_w
        usable = wet & (surplus > 0) & (leverage > 1e-9)
        v_humd = np.where(
            usable,
            self._vols * surplus / np.where(usable, leverage, 1.0), 0.0)
        c_surplus = C - self._co2_target
        c_leverage = C - self._outdoor_co2_const
        c_usable = (c_surplus > 0) & (c_leverage > 1e-9)
        v_co2 = np.where(
            c_usable,
            self._vols * c_surplus / np.where(c_usable, c_leverage, 1.0),
            0.0)
        demand = np.maximum(v_humd, v_co2) / CONTROL_HORIZON_S
        demand = np.clip(demand, self._min_fresh, _FAN_FLOWS[-1])
        step = np.searchsorted(_FAN_FLOWS, demand - 1e-12, side="left")
        self._u_fan_step = step
        self._u_flap_tgt = np.where(step > 0, 1.0, 0.0)
        self._u_pump_v = _pump_voltage(coil_flow, self._c_maxf,
                                       self._c_maxv, self._c_dead)

    def on_record(self, now: float) -> None:
        """Mirror the master's recorder tick into every replica trace.

        The master records through :meth:`BubbleZero._record` as usual;
        this seam writes the same series names from the batch arrays so
        a finalized replica summarises like a finished solo run
        (comfort/dew violation minutes need the trace, not just final
        state).  Values live in the lockstep tolerance lane, like the
        rest of the replica trajectory.
        """
        if not self._r:
            return
        dew_z = dew_point_from_humidity_ratio_array(self._W)
        for r, rep in enumerate(self.replicas):
            trace = rep.sim.trace
            outdoor = rep.plant.outdoor(now)
            trace.record("outdoor/temp", now, outdoor.temp_c)
            trace.record("outdoor/dew", now, outdoor.dew_point_c)
            for i in range(self._n):
                trace.record(f"subspace/{i}/temp", now,
                             float(self._T[r, i]))
                trace.record(f"subspace/{i}/dew", now,
                             float(dew_z[r, i]))
                trace.record(f"subspace/{i}/co2", now,
                             float(self._C[r, i]))
            trace.record("tank/18C", now, float(self._r_tank[0][r]))
            trace.record("tank/8C", now, float(self._v_tank[0][r]))
            for p in range(self._np):
                trace.record(f"panel/{p}/mix_temp", now,
                             float(self._p_last_mixt[r, p]))
                total = float(self._p_last_total[r, p])
                trace.record(f"panel/{p}/mix_flow", now,
                             total if total > 0 else 0.0)
                if self._gap_count:
                    trace.record(f"panel/{p}/heat", now,
                                 float(self._p_last_heat[r, p]))
                    trace.record(f"panel/{p}/surface", now,
                                 float(self._p_last_surf[r, p]))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self, minutes: Optional[float] = None) -> List:
        """Run master + batch to the horizon; returns the systems."""
        horizon = self.spec.run_minutes if minutes is None else minutes
        self.master.start()
        self.master.run(minutes=horizon)
        self.master.finalize()
        self.finalize_replicas()
        return self.systems

    def finalize_replicas(self) -> None:
        """Write the batch arrays back into the replica objects.

        After this, each replica's plant reads exactly like a finished
        solo run: meters, tanks, pumps, guard and zone state all hold
        the batch results (controller-internal PID state is not written
        back — replicas' controller objects never ran).
        """
        if self._finalized or not self._r:
            self._finalized = True
            return
        self._finalized = True
        for r, rep in enumerate(self.replicas):
            plant = rep.plant
            arrays = plant._vector_kernel.arrays
            arrays.temp_c[:] = self._T[r]
            arrays.humidity_ratio[:] = self._W[r]
            arrays.co2_ppm[:] = self._C[r]
            for name, tank, chiller in (
                    ("r", plant.radiant_tank, plant.radiant_tank.chiller),
                    ("v", plant.vent_tank, plant.vent_tank.chiller)):
                st = self._r_tank if name == "r" else self._v_tank
                tank.temp_c = float(st[0][r])
                tank.energy_in_j = float(st[1][r])
                tank.heat_returned_j = float(st[2][r])
                tank.ambient_gain_j = float(st[3][r])
                tank._chilling = bool(st[4][r])
                chiller.energy_j = float(st[5][r])
                chiller.heat_moved_j = float(st[6][r])
            for p, loop in enumerate(plant.panel_loops):
                loop.return_temp_c = float(self._p_rt[r, p])
                loop.mix_temp_c = float(self._p_last_mixt[r, p])
                total = float(self._p_last_total[r, p])
                loop.mix_flow_lps = total if total > 0 else 0.0
                loop.last_result = PanelResult(
                    float(self._p_last_heat[r, p]),
                    float(self._p_last_ret[r, p]),
                    float(self._p_last_surf[r, p]),
                    float(self._p_last_eff[r, p]) if total > 0 else 0.0)
                loop.panel.heat_absorbed_j = float(self._p_heat_abs[r, p])
                loop.supply_pump.energy_j = float(self._p_sup_e[r, p])
                loop.recycle_pump.energy_j = float(self._p_rcy_e[r, p])
                loop.supply_pump.set_voltage(float(self._p_sup_v[r, p]))
                loop.recycle_pump.set_voltage(float(self._p_rcy_v[r, p]))
            for i, unit in enumerate(plant.vent_units):
                ab = unit.airbox
                ab._coil_flow_effective_lps = float(self._u_eff[r, i])
                ab.coil.heat_extracted_j = float(self._u_heat_e[r, i])
                ab.coil.water_temp_c = float(self._u_last_waterT[r, i])
                ab.fans.energy_j = float(self._u_fan_e[r, i])
                ab.fans.speed_step = int(self._u_fan_step[r, i])
                ab.coil_pump.energy_j = float(self._u_pump_e[r, i])
                ab.coil_pump.set_voltage(float(self._u_pump_v[r, i]))
                flap = unit.flap
                flap._position = float(self._u_flap_pos[r, i])
                flap._target = float(self._u_flap_tgt[r, i])
                flap.energy_j = float(self._u_flap_e[r, i])
                if self._gap_count:
                    unit.last_output = AirboxOutput(
                        flow_m3s=float(self._u_last_flow[r, i]),
                        supply_temp_c=float(self._u_supt[r, i]),
                        supply_humidity_ratio=float(self._u_supw[r, i]),
                        supply_dew_point_c=float(self._u_last_dew[r, i]),
                        coil_heat_w=float(self._u_last_heat[r, i]),
                        coil_water_flow_lps=float(self._u_eff[r, i]),
                        fan_power_w=float(self._u_last_fan_pw[r, i]),
                    )
            guard = plant.guard
            guard.worst_margin_k = float(self._g_worst[r])
            guard.violations = int(self._g_viol[r])
            plant.room.condensation_events = int(self._cond_ev[r])
            plant.fan_energy_j = float(self._fan_acc[r])
            plant.time_integrated_s = float(self._time_int[r])


def _tank_tick_batch(t, ein, hret, gain, chilling, ce, chm, dt, ambient,
                     ua, mass, hi, lo, cap, par, cop):
    """Vectorised :func:`repro.physics.vector._tank_tick` over replicas."""
    gain_w = ua * (ambient - t)
    g_dt = gain_w * dt
    t = t + g_dt / mass
    gain = gain + g_dt
    chilling = np.where(t > hi, True, np.where(t < lo, False, chilling))
    max_removable = (t - lo) * mass / dt if dt else np.zeros_like(t)
    load = np.minimum(cap, np.maximum(0.0, max_removable))
    clamped = np.minimum(load, cap)
    active_e = np.where(clamped == 0, par * dt, (par + clamped / cop) * dt)
    ce = ce + np.where(chilling, active_e, par * dt)
    chm = chm + np.where(chilling, clamped * dt, 0.0)
    t = t - np.where(chilling, load * dt / mass, 0.0)
    return t, ein, hret, gain, chilling, ce, chm


def run_lockstep(spec: ScenarioSpec, seeds: Sequence[int],
                 minutes: Optional[float] = None, obs=None
                 ) -> LockstepBatch:
    """Build, run and finalize a lockstep batch; returns it."""
    batch = LockstepBatch(spec, seeds, obs=obs)
    batch.run(minutes=minutes)
    return batch
