"""Parallel run execution: picklable specs, a spawn-safe process pool
and deterministic in-spec-order merging.

See :mod:`repro.runtime.spec` for the unit of work,
:mod:`repro.runtime.pool` for the executor and its robustness
contract, and :mod:`repro.runtime.progress` for progress events.
"""

from repro.runtime.pool import default_worker_count, run_specs
from repro.runtime.progress import ProgressEvent, ProgressPrinter
from repro.runtime.spec import (
    RunFailure,
    RunResult,
    RunSpec,
    execute_spec,
    paper_metrics,
    shift_fault,
)

__all__ = [
    "RunFailure",
    "RunResult",
    "RunSpec",
    "ProgressEvent",
    "ProgressPrinter",
    "default_worker_count",
    "execute_spec",
    "paper_metrics",
    "run_specs",
    "shift_fault",
]
