"""Spawn-safe process pool for independent seeded runs.

Fans a list of :class:`~repro.runtime.spec.RunSpec` out over worker
processes and merges the payloads **in spec order**, so the merged
list — and anything serialised from it — is byte-identical between
``workers=1`` and ``workers=N`` regardless of completion order.

Design decisions, in order of importance:

* **Determinism.**  Results are keyed by spec index, never by arrival.
  Each run is a pure function of its spec (fresh ``BubbleZero`` built
  inside the worker), so scheduling cannot leak into outcomes.

* **Spawn, not fork.**  Workers start with the ``spawn`` method: a
  forked child would inherit the parent's psychrometric caches, RNG
  block prefetch state and any partially-built system, which is both a
  correctness hazard (state the spec did not declare) and unavailable
  on platforms without ``fork``.  Spawn forces every run to prove it
  is reconstructible from its picklable spec alone.

* **Robustness.**  Each worker owns a duplex pipe; the parent
  multiplexes over connections *and* process sentinels, so a worker
  that dies without replying is detected immediately (no hang), a run
  that exceeds ``timeout_s`` gets its worker terminated, and either
  event triggers one bounded retry on a fresh worker before the slot
  is recorded as a structured :class:`~repro.runtime.spec.RunFailure`.
  Exceptions raised *inside* a run are deterministic and are recorded
  as failures without retry.

``workers=1`` executes in-process (no pool, no spawn overhead) with
identical merge semantics — the reference path the parallel result is
tested against.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import List, Optional, Sequence, Union

from repro.obs.events import EventLog, worker_record
from repro.runtime.progress import (
    FAILED,
    FINISHED,
    RETRIED,
    STARTED,
    ProgressCallback,
    ProgressEvent,
    emit,
)
from repro.runtime.spec import (
    BatchRunResult,
    RunFailure,
    RunResult,
    RunSpec,
    execute_spec,
)

DEFAULT_START_METHOD = "spawn"

# How long the multiplex wait may block between liveness checks.
_POLL_S = 0.25

RunPayload = Union[RunResult, BatchRunResult, RunFailure]


def default_worker_count(n_tasks: Optional[int] = None) -> int:
    """``os.cpu_count()``-aware default, capped at the task count."""
    workers = os.cpu_count() or 1
    if n_tasks is not None:
        workers = min(workers, max(1, n_tasks))
    return max(1, workers)


def run_specs(specs: Sequence[RunSpec],
              workers: Optional[int] = None,
              timeout_s: Optional[float] = None,
              retries: int = 1,
              progress: Optional[ProgressCallback] = None,
              start_method: str = DEFAULT_START_METHOD,
              obs_events: Optional[EventLog] = None
              ) -> List[RunPayload]:
    """Execute every spec; return payloads in spec order.

    Every slot of the returned list holds either the spec's
    :class:`RunResult` or a :class:`RunFailure` describing how its
    bounded retries were exhausted — the list is always complete, never
    partial, and ``run_specs`` never hangs on a dead or stuck worker
    (given a ``timeout_s`` for the stuck case).

    ``obs_events`` tees every worker lifecycle transition (started /
    finished / retried / failed) into an observability event log in
    addition to the ``progress`` callback.  The log records arrival
    order; serialise it through
    :func:`repro.obs.events.sort_worker_records` for artifacts.
    """
    specs = list(specs)
    if not specs:
        return []
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if workers is None:
        workers = default_worker_count(len(specs))
    workers = max(1, min(workers, len(specs)))
    if obs_events is not None:
        progress = _tee_progress(progress, obs_events)
    if workers == 1:
        return _run_serial(specs, progress)
    return _run_pooled(specs, workers, timeout_s, retries, progress,
                       start_method)


def _tee_progress(progress: Optional[ProgressCallback],
                  obs_events: EventLog) -> ProgressCallback:
    """Wrap ``progress`` so every event also lands in ``obs_events``."""
    def tee(event: ProgressEvent) -> None:
        record = worker_record(event)
        kind = record.pop("kind")
        t = record.pop("t")
        obs_events.emit(kind, t, **record)
        emit(progress, event)
    return tee


def _run_serial(specs: List[RunSpec],
                progress: Optional[ProgressCallback]) -> List[RunPayload]:
    """In-process reference path; merge semantics match the pool."""
    results: List[RunPayload] = []
    for index, spec in enumerate(specs):
        emit(progress, ProgressEvent(STARTED, index, spec.label))
        try:
            payload: RunPayload = execute_spec(spec)
        except Exception as exc:
            payload = RunFailure(index=index, label=spec.label,
                                 kind="exception",
                                 message=f"{type(exc).__name__}: {exc}",
                                 attempts=1)
            emit(progress, ProgressEvent(FAILED, index, spec.label,
                                         detail=payload.message))
        else:
            emit(progress, ProgressEvent(FINISHED, index, spec.label,
                                         wall_s=payload.wall_s))
        results.append(payload)
    return results


def _worker_main(conn) -> None:
    """Worker loop: receive ``(index, attempt, spec)``, reply with
    ``(index, "ok", RunResult, None)`` or ``(index, "error", None,
    message)``.  ``None`` or a closed pipe shuts the worker down."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):  # pragma: no cover
            return
        if message is None:
            return
        index, attempt, spec = message
        try:
            reply = (index, "ok", execute_spec(spec, attempt=attempt), None)
        except Exception as exc:
            reply = (index, "error", None, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):  # pragma: no cover
            return


class _Worker:
    """One spawned worker process plus its duplex pipe and task slot."""

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   daemon=True, name="repro-run-worker")
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[tuple] = None  # (index, attempt)
        self.deadline: Optional[float] = None

    def assign(self, index: int, attempt: int, spec: RunSpec,
               timeout_s: Optional[float]) -> None:
        self.conn.send((index, attempt, spec))
        self.task = (index, attempt)
        self.deadline = (None if timeout_s is None
                         else time.monotonic() + timeout_s)

    def shutdown(self) -> None:
        """Polite stop for idle workers; escalates if ignored."""
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.conn.close()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover
            self.process.terminate()
            self.process.join(timeout=2.0)

    def kill(self) -> None:
        """Hard stop for crashed or timed-out workers."""
        self.conn.close()
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover
            self.process.kill()
            self.process.join(timeout=2.0)


def _run_pooled(specs: List[RunSpec], workers: int,
                timeout_s: Optional[float], retries: int,
                progress: Optional[ProgressCallback],
                start_method: str) -> List[RunPayload]:
    ctx = mp.get_context(start_method)
    n = len(specs)
    results: List[Optional[RunPayload]] = [None] * n
    pending = deque((index, 0) for index in range(n))
    pool: List[_Worker] = [_Worker(ctx) for _ in range(workers)]

    def lose_task(slot: int, kind: str, message: str) -> None:
        """A worker died or was timed out while holding a task."""
        worker = pool[slot]
        index, attempt = worker.task
        worker.kill()
        pool[slot] = _Worker(ctx)
        if attempt < retries:
            pending.appendleft((index, attempt + 1))
            emit(progress, ProgressEvent(RETRIED, index,
                                         specs[index].label,
                                         attempt=attempt, detail=kind))
        else:
            results[index] = RunFailure(index=index,
                                        label=specs[index].label,
                                        kind=kind, message=message,
                                        attempts=attempt + 1)
            emit(progress, ProgressEvent(FAILED, index, specs[index].label,
                                         attempt=attempt, detail=message))

    def record_reply(slot: int, reply: tuple) -> None:
        worker = pool[slot]
        _, attempt = worker.task
        worker.task = None
        worker.deadline = None
        index, status, payload, error = reply
        if status == "ok":
            results[index] = payload
            emit(progress, ProgressEvent(FINISHED, index, payload.label,
                                         attempt=attempt,
                                         wall_s=payload.wall_s))
        else:
            # A raising run is deterministic: retrying would raise again.
            results[index] = RunFailure(index=index,
                                        label=specs[index].label,
                                        kind="exception", message=error,
                                        attempts=attempt + 1)
            emit(progress, ProgressEvent(FAILED, index, specs[index].label,
                                         attempt=attempt, detail=error))

    try:
        while pending or any(w.task is not None for w in pool):
            # Feed idle (respawning dead-idle) workers.
            for slot, worker in enumerate(pool):
                if worker.task is not None:
                    continue
                if not worker.process.is_alive():
                    worker.kill()
                    pool[slot] = worker = _Worker(ctx)
                if not pending:
                    continue
                index, attempt = pending.popleft()
                try:
                    worker.assign(index, attempt, specs[index], timeout_s)
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pending.appendleft((index, attempt))
                    worker.kill()
                    pool[slot] = _Worker(ctx)
                    continue
                emit(progress, ProgressEvent(STARTED, index,
                                             specs[index].label,
                                             attempt=attempt))
            busy = [(slot, w) for slot, w in enumerate(pool)
                    if w.task is not None]
            if not busy:  # pragma: no cover - pending implies assignable
                continue
            now = time.monotonic()
            wait_s = _POLL_S
            for _, worker in busy:
                if worker.deadline is not None:
                    wait_s = min(wait_s, max(0.0, worker.deadline - now))
            waitables = [w.conn for _, w in busy]
            waitables += [w.process.sentinel for _, w in busy]
            ready = set(_connection_wait(waitables, timeout=wait_s))
            now = time.monotonic()
            for slot, worker in busy:
                if worker.conn in ready:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        lose_task(slot, "crash", _death_notice(worker))
                        continue
                    record_reply(slot, reply)
                elif (worker.process.sentinel in ready
                        and not worker.process.is_alive()):
                    # The worker died; drain any reply it buffered
                    # before death rather than discarding a good run.
                    drained = False
                    try:
                        if worker.conn.poll():
                            record_reply(slot, worker.conn.recv())
                            drained = True
                    except (EOFError, OSError):
                        pass
                    if not drained:
                        lose_task(slot, "crash", _death_notice(worker))
                elif (worker.deadline is not None
                        and now >= worker.deadline):
                    lose_task(slot, "timeout",
                              f"run exceeded {timeout_s:g}s "
                              f"(attempt {worker.task[1] + 1})")
    finally:
        for worker in pool:
            if worker.task is None:
                worker.shutdown()
            else:  # pragma: no cover - only on parent exceptions
                worker.kill()
    undecided = [index for index, payload in enumerate(results)
                 if payload is None]
    if undecided:  # pragma: no cover - the loop exits only when complete
        raise RuntimeError(f"pool exited with undecided runs: {undecided}")
    return list(results)  # type: ignore[arg-type]


def _death_notice(worker: _Worker) -> str:
    code = worker.process.exitcode
    return f"worker exited unexpectedly (exit code {code})"
