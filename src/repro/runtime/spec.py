"""Picklable run specifications and their in-worker execution.

A :class:`RunSpec` is everything a worker process needs to rebuild a
:class:`~repro.core.system.BubbleZero` from scratch and run it:
config, cell-relative faults, a workload script *name* (scripts hold
callables, so they are referenced by registry key rather than
pickled), and the horizon.  The worker returns only a compact
:class:`RunResult` — outcome, discrete hash, paper metrics, timing —
never a live system, so the payload crossing the process boundary
stays small and spawn-safe.

Execution is a pure function of the spec: the same spec produces the
same :class:`RunResult` (minus wall-clock timing) whether it runs in
this process, a spawned worker, or a retried replacement worker.  That
is the foundation of the pool's determinism guarantee (see
:mod:`repro.runtime.pool`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.analysis.degradation import RunOutcome, summarize_run
from repro.analysis.fingerprint import discrete_log_hash
from repro.core.config import BubbleZeroConfig
from repro.workloads.events import (
    paper_phase_two_events,
    periodic_disturbance_events,
)
from repro.workloads.faults import (
    ChannelJam,
    Fault,
    FaultScript,
    NodeCrash,
    SensorDrift,
    SensorStuck,
)

# Workload scripts are registered by name: an EventScript holds bound
# callables and is rebuilt inside the worker, never pickled.  Each
# builder takes (start_s, horizon_s) of the run about to execute.
SCRIPT_BUILDERS = {
    "none": lambda start_s, horizon_s: None,
    "paper-phase-two":
        lambda start_s, horizon_s: paper_phase_two_events(),
    "periodic-disturbance":
        lambda start_s, horizon_s: periodic_disturbance_events(
            start_s, horizon_s),
}


@dataclass(frozen=True)
class RunSpec:
    """One independent seeded run, picklable under the spawn method."""

    label: str
    config: BubbleZeroConfig
    faults: Tuple[Fault, ...] = ()
    script: str = "none"
    run_minutes: float = 45.0
    warmup_minutes: float = 0.0
    # Test-only fault-injection hook, interpreted by _apply_injection
    # before the run starts ("delay:S", "hang", "crash",
    # "crash-below-attempt:N", "raise").  Never set by production code.
    inject: Optional[str] = None
    # Attach an observability context to the run and ship its payload
    # back on RunResult.obs.  Off by default: telemetry is opt-in per
    # campaign/sweep/bench invocation (--telemetry).
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.script not in SCRIPT_BUILDERS:
            raise ValueError(
                f"unknown workload script {self.script!r}; known: "
                f"{', '.join(sorted(SCRIPT_BUILDERS))}")
        if self.run_minutes <= 0:
            raise ValueError("runs must have positive length")
        if not 0 <= self.warmup_minutes < self.run_minutes:
            raise ValueError("warmup must fit inside the run")


@dataclass(frozen=True)
class RunResult:
    """Compact outcome payload returned by a worker."""

    label: str
    outcome: RunOutcome
    discrete_hash: str
    metrics: Dict[str, float]
    wall_s: float
    sim_s: float
    events: int
    clearance_time: Optional[float] = None
    # Observability payload (events/metrics/health/profile) when the
    # spec requested telemetry; None otherwise.  Plain JSON-safe dicts,
    # so the result stays picklable under spawn.
    obs: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class RunFailure:
    """A run that could not produce a result, with how it died.

    ``kind`` is one of ``crash`` (the worker process exited without
    replying), ``timeout`` (the per-run deadline passed) or
    ``exception`` (the run raised; deterministic, so never retried).
    ``attempts`` counts executions including the failed ones.
    """

    index: int
    label: str
    kind: str
    message: str
    attempts: int

    def report_row(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


def shift_fault(fault: Fault, t0: float) -> Fault:
    """Rebase a cell-relative fault onto the simulator's clock."""
    if isinstance(fault, (SensorStuck, SensorDrift)):
        until = None if fault.until is None else fault.until + t0
        return replace(fault, time=fault.time + t0, until=until)
    if isinstance(fault, NodeCrash):
        return replace(fault, time=fault.time + t0)
    if isinstance(fault, ChannelJam):
        return replace(fault, start=fault.start + t0, end=fault.end + t0)
    raise TypeError(f"unknown fault: {fault!r}")  # pragma: no cover


def paper_metrics(system, outcome: RunOutcome) -> Dict[str, float]:
    """The §V metrics a sweep aggregates, as one flat name->float dict.

    COP keys are only present when the corresponding module consumed
    power (matching :meth:`Plant.cop_report`); network keys only when
    the run had a radio.
    """
    import numpy as np

    metrics: Dict[str, float] = {}
    for key, value in system.plant.cop_report().items():
        metrics[f"cop_{key}"] = float(value)
    metrics["comfort_violation_min"] = float(
        outcome.total_comfort_violation_min)
    metrics["dew_margin_violation_min"] = float(
        sum(outcome.dew_margin_violation_min.values()))
    metrics["condensation_events"] = float(outcome.condensation_events)
    metrics["mean_temp_c"] = float(outcome.mean_temp_c)
    metrics["mean_dew_c"] = float(outcome.mean_dew_c)
    metrics["energy_j"] = float(outcome.power_consumed_j)
    metrics["cooling_exergy_j"] = float(outcome.cooling_exergy_j)
    if system.medium is not None:
        stats = system.network_stats()
        metrics["transmissions"] = float(stats["transmissions"])
        metrics["collisions"] = float(stats["collisions"])
        metrics["collision_rate"] = float(stats["collision_rate"])
        elapsed = system.sim.clock.elapsed
        metrics["mean_lifetime_years"] = float(np.mean(
            [node.projected_lifetime_years(elapsed)
             for node in system.bt_nodes]))
    return metrics


def execute_spec(spec: RunSpec, attempt: int = 0) -> RunResult:
    """Build, run and summarise one spec — the worker's whole job."""
    from repro.core.system import BubbleZero

    _apply_injection(spec.inject, attempt)
    obs = None
    if spec.telemetry:
        from repro.obs import create_observability
        obs = create_observability()
    t0 = time.perf_counter()
    system = BubbleZero(spec.config, obs=obs)
    start = system.sim.now
    horizon_s = spec.run_minutes * 60.0
    script = SCRIPT_BUILDERS[spec.script](start, horizon_s)
    if script is not None:
        system.schedule_script(script)
    clearance: Optional[float] = None
    if spec.faults:
        fault_script = FaultScript(
            [shift_fault(fault, start) for fault in spec.faults])
        fault_script.apply_to(system)
        clearance = fault_script.clearance_time()
    system.start()
    system.run(minutes=spec.run_minutes)
    system.finalize()
    outcome = summarize_run(system, spec.label, clearance_time=clearance,
                            warmup_s=spec.warmup_minutes * 60.0)
    obs_data = None
    if obs is not None:
        from repro.obs.collect import obs_payload
        obs_data = obs_payload(system, obs)
    return RunResult(
        label=spec.label,
        outcome=outcome,
        discrete_hash=discrete_log_hash(system),
        metrics=paper_metrics(system, outcome),
        wall_s=time.perf_counter() - t0,
        sim_s=horizon_s,
        events=system.sim.events_dispatched,
        clearance_time=clearance,
        obs=obs_data,
    )


def _apply_injection(inject: Optional[str], attempt: int) -> None:
    """Test-only hooks exercising the pool's failure handling."""
    if not inject:
        return
    if inject.startswith("delay:"):
        time.sleep(float(inject.split(":", 1)[1]))
    elif inject == "hang":
        time.sleep(3600.0)  # pragma: no cover - killed by the pool
    elif inject == "crash":
        os._exit(3)
    elif inject.startswith("crash-below-attempt:"):
        if attempt < int(inject.split(":", 1)[1]):
            os._exit(3)
    elif inject == "raise":
        raise RuntimeError("injected failure")
    else:
        raise ValueError(f"unknown injection {inject!r}")
