"""Picklable run specifications and their in-worker execution.

A :class:`RunSpec` is everything a worker process needs to rebuild a
:class:`~repro.core.system.BubbleZero` from scratch and run it.  Since
the scenario layer landed, the *what to run* lives in a
:class:`~repro.scenarios.spec.ScenarioSpec` (config, topology,
weather, workload script, faults, horizon) and RunSpec is the thin
execution wrapper that adds what only the executor cares about: the
display label, the test-only failure-injection hook and the telemetry
switch.  The legacy keyword surface (``config=``, ``faults=``,
``script=``, ``run_minutes=``, ``warmup_minutes=``) still works and
simply builds the scenario inline.

The worker returns only a compact :class:`RunResult` — outcome,
discrete hash, paper metrics, timing — never a live system, so the
payload crossing the process boundary stays small and spawn-safe.

Execution is a pure function of the spec: the same spec produces the
same :class:`RunResult` (minus wall-clock timing) whether it runs in
this process, a spawned worker, or a retried replacement worker.  That
is the foundation of the pool's determinism guarantee (see
:mod:`repro.runtime.pool`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Optional, Tuple

from repro.analysis.degradation import RunOutcome, summarize_run
from repro.analysis.fingerprint import discrete_log_hash
from repro.core.config import BubbleZeroConfig
from repro.scenarios.spec import (
    SCRIPT_BUILDERS,  # noqa: F401  (re-exported for compat)
    ScenarioSpec,
    prepare_run,
)
from repro.workloads.faults import (
    Fault,
    shift_fault,  # noqa: F401  (re-exported for compat)
)


@dataclass(frozen=True, init=False)
class RunSpec:
    """One independent seeded run, picklable under the spawn method."""

    label: str
    scenario: ScenarioSpec
    # Test-only fault-injection hook, interpreted by _apply_injection
    # before the run starts ("delay:S", "hang", "crash",
    # "crash-below-attempt:N", "raise").  Never set by production code.
    inject: Optional[str] = None
    # Attach an observability context to the run and ship its payload
    # back on RunResult.obs.  Off by default: telemetry is opt-in per
    # campaign/sweep/bench invocation (--telemetry).
    telemetry: bool = False
    # Enable causal tracing (repro.obs.trace) on the run's
    # observability context; implies an obs context even without
    # ``telemetry``.  Off by default — spans are opt-in per
    # invocation (--trace).
    trace: bool = False
    # When non-empty, the spec is one lockstep *group*: the scenario is
    # replicated across these seeds and driven through a single
    # :class:`~repro.runtime.lockstep.LockstepBatch`, and execute_spec
    # returns a :class:`BatchRunResult` (one RunResult per seed) instead
    # of a single RunResult.  The first seed is the bit-exact master
    # lane; the scenario's own seed is ignored.
    lockstep_seeds: Tuple[int, ...] = ()

    def __init__(self, label: str,
                 scenario: Optional[ScenarioSpec] = None, *,
                 config: Optional[BubbleZeroConfig] = None,
                 faults: Tuple[Fault, ...] = (),
                 script: Optional[str] = None,
                 run_minutes: Optional[float] = None,
                 warmup_minutes: Optional[float] = None,
                 inject: Optional[str] = None,
                 telemetry: bool = False,
                 trace: bool = False,
                 lockstep_seeds: Tuple[int, ...] = ()) -> None:
        if scenario is None:
            if config is None:
                raise TypeError("RunSpec needs a scenario or a config")
            scenario = ScenarioSpec(
                name=label, config=config, faults=tuple(faults),
                script="none" if script is None else script,
                run_minutes=45.0 if run_minutes is None else run_minutes,
                warmup_minutes=(0.0 if warmup_minutes is None
                                else warmup_minutes))
        else:
            overrides = {
                key: value for key, value in (
                    ("config", config), ("script", script),
                    ("run_minutes", run_minutes),
                    ("warmup_minutes", warmup_minutes)) if value is not None}
            if faults:
                overrides["faults"] = tuple(faults)
            if overrides:
                scenario = _dc_replace(scenario, **overrides)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "scenario", scenario)
        object.__setattr__(self, "inject", inject)
        object.__setattr__(self, "telemetry", telemetry)
        object.__setattr__(self, "trace", trace)
        object.__setattr__(self, "lockstep_seeds", tuple(lockstep_seeds))

    # Delegates kept for the wide pre-scenario call surface.
    @property
    def config(self) -> BubbleZeroConfig:
        return self.scenario.config

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self.scenario.faults

    @property
    def script(self) -> str:
        return self.scenario.script

    @property
    def run_minutes(self) -> float:
        return self.scenario.run_minutes

    @property
    def warmup_minutes(self) -> float:
        return self.scenario.warmup_minutes


@dataclass(frozen=True)
class RunResult:
    """Compact outcome payload returned by a worker."""

    label: str
    outcome: RunOutcome
    discrete_hash: str
    metrics: Dict[str, float]
    wall_s: float
    sim_s: float
    events: int
    clearance_time: Optional[float] = None
    # Observability payload (events/metrics/health/profile) when the
    # spec requested telemetry; None otherwise.  Plain JSON-safe dicts,
    # so the result stays picklable under spawn.
    obs: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class BatchRunResult:
    """One lockstep group's payload: a RunResult per replicated seed.

    ``results[0]`` is the master lane and is byte-identical to the
    RunResult a solo ``execute_spec`` of the same seed would return
    (minus wall-clock); the rest are replica-lane results within the
    documented lockstep tolerance.  ``label``/``wall_s`` mirror
    RunResult's so the pool's progress accounting works unchanged.
    """

    label: str
    results: Tuple[RunResult, ...]
    wall_s: float


@dataclass(frozen=True)
class RunFailure:
    """A run that could not produce a result, with how it died.

    ``kind`` is one of ``crash`` (the worker process exited without
    replying), ``timeout`` (the per-run deadline passed) or
    ``exception`` (the run raised; deterministic, so never retried).
    ``attempts`` counts executions including the failed ones.
    """

    index: int
    label: str
    kind: str
    message: str
    attempts: int

    def report_row(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


def paper_metrics(system, outcome: RunOutcome) -> Dict[str, float]:
    """The §V metrics a sweep aggregates, as one flat name->float dict.

    COP keys are only present when the corresponding module consumed
    power (matching :meth:`Plant.cop_report`); network keys only when
    the run had a radio.
    """
    import numpy as np

    metrics: Dict[str, float] = {}
    for key, value in system.plant.cop_report().items():
        metrics[f"cop_{key}"] = float(value)
    metrics["comfort_violation_min"] = float(
        outcome.total_comfort_violation_min)
    metrics["dew_margin_violation_min"] = float(
        sum(outcome.dew_margin_violation_min.values()))
    metrics["condensation_events"] = float(outcome.condensation_events)
    metrics["mean_temp_c"] = float(outcome.mean_temp_c)
    metrics["mean_dew_c"] = float(outcome.mean_dew_c)
    metrics["energy_j"] = float(outcome.power_consumed_j)
    metrics["cooling_exergy_j"] = float(outcome.cooling_exergy_j)
    if system.medium is not None:
        stats = system.network_stats()
        metrics["transmissions"] = float(stats["transmissions"])
        metrics["collisions"] = float(stats["collisions"])
        metrics["collision_rate"] = float(stats["collision_rate"])
        elapsed = system.sim.clock.elapsed
        metrics["mean_lifetime_years"] = float(np.mean(
            [node.projected_lifetime_years(elapsed)
             for node in system.bt_nodes]))
    return metrics


def execute_spec(spec: RunSpec, attempt: int = 0) -> RunResult:
    """Build, run and summarise one spec — the worker's whole job."""
    _apply_injection(spec.inject, attempt)
    if spec.lockstep_seeds:
        return _execute_lockstep(spec)
    obs = None
    if spec.telemetry or spec.trace:
        from repro.obs import create_observability
        obs = create_observability(trace=spec.trace)
    t0 = time.perf_counter()
    system, clearance = prepare_run(spec.scenario, obs=obs)
    system.start()
    system.run(minutes=spec.run_minutes)
    system.finalize()
    outcome = summarize_run(system, spec.label, clearance_time=clearance,
                            warmup_s=spec.warmup_minutes * 60.0)
    obs_data = None
    if obs is not None:
        from repro.obs.collect import obs_payload
        obs_data = obs_payload(system, obs)
    return RunResult(
        label=spec.label,
        outcome=outcome,
        discrete_hash=discrete_log_hash(system),
        metrics=paper_metrics(system, outcome),
        wall_s=time.perf_counter() - t0,
        sim_s=spec.run_minutes * 60.0,
        events=system.sim.events_dispatched,
        clearance_time=clearance,
        obs=obs_data,
    )


def _execute_lockstep(spec: RunSpec) -> "BatchRunResult":
    """Run one lockstep group and summarise every lane.

    The master lane (first seed) runs the full event loop, so its
    outcome, metrics and discrete hash match a solo run of the same
    seed byte-for-byte; replicas are advanced in lockstep and
    summarised from their written-back state and mirrored traces.
    Telemetry, when requested, observes the master only — replicas
    never dispatch events of their own.
    """
    from repro.runtime.lockstep import LockstepBatch

    obs = None
    if spec.telemetry or spec.trace:
        from repro.obs import create_observability
        obs = create_observability(trace=spec.trace)
    t0 = time.perf_counter()
    batch = LockstepBatch(spec.scenario, spec.lockstep_seeds, obs=obs)
    batch.run(minutes=spec.run_minutes)
    wall_s = time.perf_counter() - t0
    results = []
    for k, (seed, system) in enumerate(zip(batch.seeds, batch.systems)):
        label = f"seed-{seed}"
        outcome = summarize_run(system, label, clearance_time=None,
                                warmup_s=spec.warmup_minutes * 60.0)
        obs_data = None
        if k == 0 and obs is not None:
            from repro.obs.collect import obs_payload
            obs_data = obs_payload(system, obs)
        results.append(RunResult(
            label=label,
            outcome=outcome,
            discrete_hash=discrete_log_hash(system),
            metrics=paper_metrics(system, outcome),
            wall_s=wall_s,
            sim_s=spec.run_minutes * 60.0,
            events=system.sim.events_dispatched,
            clearance_time=None,
            obs=obs_data,
        ))
    return BatchRunResult(spec.label, tuple(results), wall_s)


def _apply_injection(inject: Optional[str], attempt: int) -> None:
    """Test-only hooks exercising the pool's failure handling."""
    if not inject:
        return
    if inject.startswith("delay:"):
        time.sleep(float(inject.split(":", 1)[1]))
    elif inject == "hang":
        time.sleep(3600.0)  # pragma: no cover - killed by the pool
    elif inject == "crash":
        os._exit(3)
    elif inject.startswith("crash-below-attempt:"):
        if attempt < int(inject.split(":", 1)[1]):
            os._exit(3)
    elif inject == "raise":
        raise RuntimeError("injected failure")
    else:
        raise ValueError(f"unknown injection {inject!r}")
