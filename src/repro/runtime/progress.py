"""Progress reporting for pooled run execution.

The pool emits one :class:`ProgressEvent` per lifecycle transition of
each spec (started, finished, retried, failed).  Consumers either pass
a plain callable straight through or use :class:`ProgressPrinter`,
which renders ``[done/total]`` counter lines suitable for a terminal.

Events arrive in *completion* order, which under a parallel pool is
not spec order — progress output is advisory, and nothing derived from
it may enter a report (reports are merged in spec order; see
:mod:`repro.runtime.pool`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

# Event kinds, in lifecycle order.
STARTED = "started"
FINISHED = "finished"
RETRIED = "retried"
FAILED = "failed"


@dataclass(frozen=True)
class ProgressEvent:
    """One lifecycle transition of one spec inside the pool."""

    kind: str
    index: int
    label: str
    attempt: int = 0
    wall_s: Optional[float] = None
    detail: str = ""


ProgressCallback = Callable[[ProgressEvent], None]


def _default_write(line: str) -> None:
    """Write one progress line to stdout and flush immediately.

    Resolves ``sys.stdout`` at call time (not at printer construction)
    so output still lands correctly under pytest's capture swaps or a
    caller re-binding stdout mid-campaign, and flushes per event so a
    pipe or CI log shows progress live rather than on buffer fill.
    """
    import sys
    stream = sys.stdout
    stream.write(line + "\n")
    stream.flush()


class ProgressPrinter:
    """Render pool progress as counter-prefixed terminal lines."""

    def __init__(self, total: int,
                 write: Optional[Callable[[str], None]] = None) -> None:
        self.total = total
        self.done = 0
        self._write = write or _default_write

    def __call__(self, event: ProgressEvent) -> None:
        if event.kind == STARTED:
            self._write(f"  [{self.done}/{self.total}] "
                        f"start {event.label}")
        elif event.kind == FINISHED:
            self.done += 1
            wall = ("" if event.wall_s is None
                    else f" ({event.wall_s:.1f}s)")
            self._write(f"  [{self.done}/{self.total}] "
                        f"done {event.label}{wall}")
        elif event.kind == RETRIED:
            self._write(f"  retry {event.label} "
                        f"(attempt {event.attempt + 1}): {event.detail}")
        elif event.kind == FAILED:
            self.done += 1
            self._write(f"  [{self.done}/{self.total}] "
                        f"FAILED {event.label}: {event.detail}")


def emit(progress: Optional[ProgressCallback],
         event: ProgressEvent) -> None:
    """Deliver ``event`` if a callback is registered; never raise."""
    if progress is None:
        return
    try:
        progress(event)
    except Exception:  # pragma: no cover - progress must not kill runs
        pass
