"""Baselines the paper compares against.

* :mod:`repro.baselines.aircon` — the conventional all-air HVAC system
  ("AirCon", COP ~ 2.8) that uses a single 8 degC air loop for cooling,
  dehumidification and ventilation together.
* The *Fixed* transmission baseline (T_snd = T_spl) is built into
  :class:`repro.devices.btnode.BtSensorNode` via
  ``TransmissionMode.FIXED``.
"""

from repro.baselines.aircon import AirConBaseline, AirConResult

__all__ = ["AirConBaseline", "AirConResult"]
