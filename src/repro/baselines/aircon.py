"""The conventional all-air HVAC baseline ("AirCon", paper Fig. 11).

Traditional systems "use as low as 8 degC air for both cooling and
dehumidification" (paper §II): one chiller produces ~8 degC coolant, a
single air handler both dries and cools, and the whole sensible load is
moved at the low coil temperature.  The literature COP for such systems
is about 2.8 [paper refs. 23, 26].

The baseline reuses the same Carnot-fraction chiller model as
BubbleZERO (same second-law efficiency class as the 8 degC ventilation
chiller), so the comparison isolates exactly the design difference the
paper credits: the *working temperature* of the heat transport.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hydronics.chiller import CarnotFractionChiller

# All-air systems push the whole load through supply fans; typical fan
# power is this fraction of the moved heat.
FAN_POWER_FRACTION = 0.04


@dataclass(frozen=True)
class AirConResult:
    """Energy outcome of serving a load with the AirCon baseline."""

    heat_removed_j: float
    electricity_j: float

    @property
    def cop(self) -> float:
        if self.electricity_j <= 0:
            raise ValueError("no electricity consumed")
        return self.heat_removed_j / self.electricity_j


class AirConBaseline:
    """Single-loop 8 degC all-air HVAC."""

    def __init__(self, coil_temp_c: float = 8.0,
                 second_law_fraction: float = 0.30,
                 parasitic_w: float = 10.0,
                 capacity_w: float = 4000.0) -> None:
        self.chiller = CarnotFractionChiller(
            "aircon-chiller", cold_setpoint_c=coil_temp_c,
            second_law_fraction=second_law_fraction,
            parasitic_w=parasitic_w, capacity_w=capacity_w)

    def serve(self, heat_removed_j: float, duration_s: float,
              reject_temp_c: float) -> AirConResult:
        """Serve ``heat_removed_j`` of cooling over ``duration_s``.

        The *entire* load (sensible + latent) passes through the 8 degC
        coil — the design constraint the low-exergy decomposition lifts.
        """
        if heat_removed_j < 0 or duration_s <= 0:
            raise ValueError("load must be >= 0 over a positive duration")
        load_w = heat_removed_j / duration_s
        chiller_w = self.chiller.electrical_power_w(load_w, reject_temp_c)
        fan_w = FAN_POWER_FRACTION * load_w
        return AirConResult(
            heat_removed_j=heat_removed_j,
            electricity_j=(chiller_w + fan_w) * duration_s)

    def cop_at(self, reject_temp_c: float, load_w: float = 1000.0) -> float:
        """Steady-state COP at a representative load."""
        return self.serve(load_w * 3600.0, 3600.0, reject_temp_c).cop
