"""Performance benchmarks over the two paper trials.

Times the §V-A HVAC-performance trial (105 simulated minutes, paper
phase-two door events, COP metering window) and the §V-C networking
trial (5 simulated hours, periodic disturbances, BT-ADPT), reporting
wall-clock time, dispatched events, events per second and simulated
seconds per wall-clock second, alongside the domain metrics the paper
reports (COP, comfort, packet counts, lifetimes).

Usage::

    PYTHONPATH=src python -m repro.bench                 # both trials
    PYTHONPATH=src python -m repro.bench --trial network
    PYTHONPATH=src python -m repro.bench --no-macro      # reference physics
    PYTHONPATH=src python -m repro.bench --grid 4,32,128 # vector scaling
    PYTHONPATH=src python -m repro.bench -o BENCH_1.json

Results are written as JSON (default ``BENCH_1.json`` in the current
directory).  When a baseline file is available (default
``benchmarks/perf/baseline_seed.json``, recorded from the seed commit on
the same class of machine), each run is compared against it: wall-clock
speedup for the timing numbers and per-metric deltas checked against the
tolerances the baseline declares — discrete counters (events, frames,
collisions) must match exactly, continuous metrics within the small
relative drift introduced by quantised-key psychrometric memoisation.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from dataclasses import replace

from repro.analysis.fingerprint import discrete_log_hash
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import prepare_run

# Simulated horizons of the two trials, seconds.
HVAC_SIM_S = (40 + 20 + 45) * 60.0
NETWORK_SIM_S = 5 * 3600.0

DEFAULT_BASELINE = Path("benchmarks/perf/baseline_seed.json")

# Observability must cost less than this much wall clock (relative to
# the blind run) to stay honest about "telemetry never perturbs and
# barely slows" — asserted by the --obs section.
OBS_OVERHEAD_BUDGET_PCT = 3.0

# Sim-seconds per lockstep chunk when measuring that overhead.  The
# blind and instrumented systems advance through the trial horizon in
# alternating chunks of this size, so both sides sample the machine's
# noise (frequency scaling, noisy neighbours) at the same instants —
# sequential whole-trial timings on a shared box drift by far more
# than the 3% being asserted.
OBS_CHUNK_S = 60.0


# Registry scenarios behind each bench trial; the benchmark is the
# registered experiment with only the physics path swapped.
_SCENARIOS = {"hvac": "paper-va", "network": "paper-vc"}


def _build_trial(name: str, macro: bool, obs=None):
    from repro.physics import psychrometrics, spectral

    psychrometrics.cache_clear()
    spectral.cache_clear()
    spec = get_scenario(_SCENARIOS[name])
    spec = replace(spec, config=replace(spec.config,
                                        physics_macro_step=macro))
    system, _ = prepare_run(spec, obs=obs)
    return system, spec.run_minutes * 60.0


def _build_hvac(macro: bool, obs=None):
    return _build_trial("hvac", macro, obs=obs)


def _build_network(macro: bool, obs=None):
    return _build_trial("network", macro, obs=obs)


_BUILDERS = {"hvac": _build_hvac, "network": _build_network}


def run_hvac_trial(macro: bool = True, obs=None) -> Dict[str, object]:
    """The paper §V-A trial: phase-two events, COP metering window."""
    from repro.physics import psychrometrics

    system, _ = _build_hvac(macro, obs=obs)
    system.start()
    t0 = time.perf_counter()
    system.run(minutes=40)
    before = system.plant.meter_snapshot()
    system.run(minutes=20)
    after = system.plant.meter_snapshot()
    system.run(minutes=45)
    wall_s = time.perf_counter() - t0
    system.finalize()
    room = system.plant.room
    result = {
        "wall_s": wall_s,
        "sim_s": HVAC_SIM_S,
        "events": system.sim.events_dispatched,
        "events_per_s": system.sim.events_dispatched / wall_s,
        "sim_s_per_wall_s": HVAC_SIM_S / wall_s,
        "discrete_hash": discrete_log_hash(system),
        "cop": system.plant.cop_between(before, after),
        "mean_temp_c": room.mean_temp_c(),
        "mean_dew_c": room.mean_dew_point_c(),
        "mean_co2": room.mean_co2_ppm(),
        "condensation": room.condensation_events,
        "net": system.network_stats(),
        "lifetime_cop": system.plant.cop_report(),
        "psychro_cache": psychrometrics.cache_stats(),
    }
    if obs is not None:
        from repro.obs.collect import obs_payload
        result["obs_payload"] = obs_payload(system, obs)
    return result


def run_network_trial(macro: bool = True, obs=None) -> Dict[str, object]:
    """The paper §V-C trial: 5 h of BT-ADPT under periodic disturbances."""
    import numpy as np

    from repro.physics import psychrometrics

    system, _ = _build_network(macro, obs=obs)
    system.start()
    t0 = time.perf_counter()
    system.run(hours=5)
    wall_s = time.perf_counter() - t0
    system.finalize()
    room = system.plant.room
    result = {
        "wall_s": wall_s,
        "sim_s": NETWORK_SIM_S,
        "events": system.sim.events_dispatched,
        "events_per_s": system.sim.events_dispatched / wall_s,
        "sim_s_per_wall_s": NETWORK_SIM_S / wall_s,
        "discrete_hash": discrete_log_hash(system),
        "mean_temp_c": room.mean_temp_c(),
        "mean_dew_c": room.mean_dew_point_c(),
        "net": system.network_stats(),
        "mean_lifetime_years": float(np.mean(
            [n.projected_lifetime_years(NETWORK_SIM_S)
             for n in system.bt_nodes])),
        "mean_tsnd": float(np.mean(
            [n.send_period_s for n in system.bt_nodes])),
        "sniffer_frames": system.sniffer.frame_count,
        "psychro_cache": psychrometrics.cache_stats(),
    }
    if obs is not None:
        from repro.obs.collect import obs_payload
        result["obs_payload"] = obs_payload(system, obs)
    return result


TRIALS = {
    "hvac": run_hvac_trial,
    "network": run_network_trial,
}

# Keys that legitimately vary between identical runs (wall clock and
# its derivatives); everything else is a domain metric and must be
# bit-identical across repeats of the same trial.
TIMING_KEYS = ("wall_s", "events_per_s", "sim_s_per_wall_s")


def domain_mismatches(first: Dict[str, object],
                      other: Dict[str, object]) -> List[str]:
    """Domain metrics that differ between two runs of the same trial."""
    flat_first: Dict[str, object] = {}
    flat_other: Dict[str, object] = {}
    _flatten("", first, flat_first)
    _flatten("", other, flat_other)
    mismatches = []
    for key in sorted(set(flat_first) | set(flat_other)):
        if key.rsplit("/", 1)[-1] in TIMING_KEYS:
            continue
        # Telemetry payloads carry wall-clock profile samples; the
        # discrete_hash they ride with is what must (and does) match.
        if key.startswith("obs_payload/"):
            continue
        if flat_first.get(key) != flat_other.get(key):
            mismatches.append(f"{key}: {flat_first.get(key)!r} "
                              f"!= {flat_other.get(key)!r}")
    return mismatches


def run_best_of(name: str, macro: bool, repeat: int) -> Dict[str, object]:
    """Run a trial ``repeat`` times; keep the best wall clock.

    Domain metrics must be bit-identical across repeats (the runs are
    the same pure function of the seed) — any mismatch is a
    determinism bug and raises rather than silently reporting one of
    the divergent runs.  Timing derivatives are recomputed from the
    best wall clock.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    runs = [TRIALS[name](macro=macro) for _ in range(repeat)]
    for i, other in enumerate(runs[1:], start=2):
        mismatches = domain_mismatches(runs[0], other)
        if mismatches:
            raise RuntimeError(
                f"{name} trial is not deterministic: repeat {i} "
                f"diverged on " + "; ".join(mismatches))
    best = min(runs, key=lambda run: run["wall_s"])
    wall = float(best["wall_s"])
    best["events_per_s"] = best["events"] / wall
    best["sim_s_per_wall_s"] = best["sim_s"] / wall
    best["repeat"] = repeat
    return best


# Parallel fan-out section defaults: independent seeded campaign-length
# runs, enough of them to keep every worker busy for several runs.
PARALLEL_RUNS = 8
PARALLEL_RUN_MINUTES = 45.0


def run_parallel_section(workers: int,
                         runs: int = PARALLEL_RUNS,
                         run_minutes: float = PARALLEL_RUN_MINUTES
                         ) -> Dict[str, object]:
    """Fan independent seeded runs over the pool; report throughput.

    ``agg_sim_s_per_wall_s`` is the headline number: summed simulated
    seconds delivered per wall-clock second across all workers.
    ``parallel_speedup`` divides a *measured* serial loop over the same
    specs by the pooled wall clock.  Summed in-worker wall clocks are
    no substitute: on an oversubscribed machine each worker's clock
    counts time spent descheduled, which fakes near-linear scaling on
    a single core.  (``cpu_count`` is recorded so a sub-1x result on a
    one-core box reads as what it is: pool overhead with no cores to
    spend it on.)
    """
    import os

    from repro.core.config import BubbleZeroConfig
    from repro.runtime.pool import run_specs
    from repro.runtime.spec import RunResult, RunSpec

    base = get_scenario("bench-parallel")
    specs = [RunSpec(label=f"seed-{seed}",
                     scenario=replace(base, name=f"seed-{seed}",
                                      config=BubbleZeroConfig(seed=seed),
                                      run_minutes=run_minutes))
             for seed in range(1, runs + 1)]
    t0 = time.perf_counter()
    serial_payloads = run_specs(specs, workers=1)
    serial_wall_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    payloads = run_specs(specs, workers=workers)
    wall_s = time.perf_counter() - t0
    ok = [p for p in payloads if isinstance(p, RunResult)]
    sim_total = sum(p.sim_s for p in ok)
    mismatched = sum(
        1 for serial, pooled in zip(serial_payloads, payloads)
        if not (isinstance(serial, RunResult)
                and isinstance(pooled, RunResult)
                and serial.discrete_hash == pooled.discrete_hash))
    if mismatched:
        raise RuntimeError(
            f"parallel section diverged from the serial loop on "
            f"{mismatched} run(s) — determinism bug")
    return {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "run_minutes": run_minutes,
        "failures": len(payloads) - len(ok),
        "wall_s": wall_s,
        "serial_wall_s": serial_wall_s,
        "sim_s_total": sim_total,
        "agg_sim_s_per_wall_s": sim_total / wall_s,
        "parallel_speedup": serial_wall_s / wall_s,
    }


# Grid scaling section defaults: the direct-control grid trials behind
# `--grid`, and how many seed replicas the lockstep batch stacks.
GRID_ZONES = (4, 32, 128)
GRID_BATCH_SEEDS = 16

# Largest grid where the cache-off control run is still cheap enough to
# bother timing; beyond this the point is already made and the bench
# only reports the cached path.
NOCACHE_MAX_ZONES = 128


def run_grid_trial(zones: int, vector: bool,
                   cache: bool = True) -> Dict[str, object]:
    """One timed run of the ``grid-<zones>`` scenario on one physics
    path (``vector=False`` → scalar per-zone objects).

    The spectral cache is cleared first so every trial starts cold;
    ``cache=False`` disables it outright (every gap re-decomposes),
    which isolates the cache's contribution to the wall clock.  Either
    way the trajectory is bit-identical — the cache stores exact
    decompositions, it never changes them.
    """
    from repro.physics import spectral

    spec = get_scenario(f"grid-{zones}")
    spec = replace(spec, config=replace(spec.config,
                                        physics_vector=vector))
    spectral.cache_clear()
    prev = spectral.configure(enabled=cache)
    try:
        system, _ = prepare_run(spec)
        system.start()
        t0 = time.perf_counter()
        system.run(minutes=spec.run_minutes)
        wall_s = time.perf_counter() - t0
        system.finalize()
        stats = spectral.cache_stats()
    finally:
        spectral.configure(**prev)
    events = system.sim.events_dispatched
    return {
        "wall_s": wall_s,
        "sim_s": spec.run_minutes * 60.0,
        "events": events,
        "events_per_s": events / wall_s,
        "zone_events_per_s": zones * events / wall_s,
        "discrete_hash": discrete_log_hash(system),
        "mean_temp_c": system.plant.room.mean_temp_c(),
        "solver": spec.config.physics_solver,
        "spectral_cache": stats,
    }


def run_grid_section(zone_counts: List[int],
                     batch_seeds: int = GRID_BATCH_SEEDS,
                     repeat: int = 1) -> Dict[str, object]:
    """Scaling sweep of the vectorized physics core over grid sizes.

    For each zone count the ``grid-<zones>`` scenario runs on both
    physics paths (best-of-``repeat`` wall clocks).  The two paths must
    produce identical discrete log hashes — the SoA core is bit-exact,
    so any mismatch raises rather than reporting a speedup over
    different physics.  A lockstep seed-replication batch
    (:class:`repro.runtime.lockstep.LockstepBatch`) then stacks
    ``batch_seeds`` replicas of the same scenario; its headline number
    is events-per-second *equivalent* — batch size times the master's
    events over the batch wall clock, i.e. how fast one process
    delivers seed-replicated trials compared to running them one at a
    time on the scalar path.
    """
    from repro.physics import spectral
    from repro.runtime.lockstep import LockstepBatch

    section: Dict[str, object] = {
        "batch_seeds": batch_seeds,
        "rows": [],
    }
    for zones in zone_counts:
        scalar = min((run_grid_trial(zones, vector=False)
                      for _ in range(repeat)),
                     key=lambda r: r["wall_s"])
        vector = min((run_grid_trial(zones, vector=True)
                      for _ in range(repeat)),
                     key=lambda r: r["wall_s"])
        if scalar["discrete_hash"] != vector["discrete_hash"]:
            raise RuntimeError(
                f"grid-{zones}: vector path diverged from scalar "
                f"(discrete hashes differ) — the SoA core must be "
                f"bit-exact")
        nocache = None
        if zones <= NOCACHE_MAX_ZONES:
            nocache = min((run_grid_trial(zones, vector=True, cache=False)
                           for _ in range(repeat)),
                          key=lambda r: r["wall_s"])
            if nocache["discrete_hash"] != vector["discrete_hash"]:
                raise RuntimeError(
                    f"grid-{zones}: disabling the spectral cache "
                    f"changed the discrete hash — the cache must be "
                    f"observationally invisible")
        spec = get_scenario(f"grid-{zones}")
        seeds = list(range(7, 7 + batch_seeds))
        batch_wall = float("inf")
        for _ in range(repeat):
            spectral.cache_clear()
            t0 = time.perf_counter()
            batch = LockstepBatch(spec, seeds)
            batch.run()
            batch_wall = min(batch_wall, time.perf_counter() - t0)
        events = int(scalar["events"])
        eq = batch_seeds * events / batch_wall
        row = {
            "zones": zones,
            "events": events,
            "solver": vector["solver"],
            "scalar": {k: scalar[k] for k in
                       ("wall_s", "events_per_s", "zone_events_per_s")},
            "vector": {k: vector[k] for k in
                       ("wall_s", "events_per_s", "zone_events_per_s")},
            "vector_speedup": scalar["wall_s"] / vector["wall_s"],
            "hashes_equal": True,
            "discrete_hash": scalar["discrete_hash"],
            "spectral_cache": vector["spectral_cache"],
            "batch": {
                "seeds": batch_seeds,
                "wall_s": batch_wall,
                "events_per_s_equiv": eq,
                "speedup_vs_scalar": eq / float(scalar["events_per_s"]),
            },
        }
        if nocache is not None:
            row["nocache"] = {
                "wall_s": nocache["wall_s"],
                "cache_speedup": nocache["wall_s"] / vector["wall_s"],
                "hashes_equal": True,
            }
        rows = section["rows"]
        assert isinstance(rows, list)
        rows.append(row)
        cache_note = (f" | nocache {nocache['wall_s']:.2f}s "
                      f"({row['nocache']['cache_speedup']:.2f}x cache win)"
                      if nocache is not None else "")
        print(f"  grid-{zones} [{row['solver']}]: "
              f"scalar {scalar['wall_s']:.2f}s "
              f"({scalar['zone_events_per_s']:,.0f} zone-ev/s) | "
              f"vector {vector['wall_s']:.2f}s "
              f"({row['vector_speedup']:.2f}x){cache_note} | "
              f"batch[{batch_seeds}] {batch_wall:.2f}s -> "
              f"{eq:,.0f} ev/s-eq "
              f"({row['batch']['speedup_vs_scalar']:.2f}x vs scalar)",
              flush=True)
    return section


# Lockstep-sweep section defaults: a short direct sweep, enough seeds
# for a few groups.
SWEEP_LOCKSTEP_SEEDS = 16
SWEEP_LOCKSTEP_MINUTES = 30.0
SWEEP_LOCKSTEP_WARMUP = 5.0


def run_sweep_lockstep_section(batch: int,
                               seeds: int = SWEEP_LOCKSTEP_SEEDS,
                               run_minutes: float = SWEEP_LOCKSTEP_MINUTES
                               ) -> Dict[str, object]:
    """Per-seed pool vs lockstep-backed ``repro sweep``, same seeds.

    Both sides run in this process (workers=1) so the comparison is
    pure executor mechanics, not pool scheduling.  The master lanes of
    the lockstep report must be byte-identical to the corresponding
    rows of the per-seed report; the headline number is events-per-
    second *equivalent* — the per-seed sweep's total dispatched events
    divided by each side's wall clock, i.e. how fast either lane
    delivers the same replicated-trial workload.
    """
    from repro.workloads.sweep import SweepConfig, run_sweep

    seed_tuple = tuple(range(1, seeds + 1))
    serial_cfg = SweepConfig(seeds=seed_tuple, run_minutes=run_minutes,
                             warmup_minutes=SWEEP_LOCKSTEP_WARMUP,
                             direct=True)
    lock_cfg = SweepConfig(seeds=seed_tuple, run_minutes=run_minutes,
                           warmup_minutes=SWEEP_LOCKSTEP_WARMUP,
                           direct=True, lockstep_batch=batch)
    t0 = time.perf_counter()
    serial = run_sweep(serial_cfg, workers=1)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    lock = run_sweep(lock_cfg, workers=1)
    lock_wall = time.perf_counter() - t0
    serial_rows = serial.report_dict()["runs"]
    lock_rows = lock.report_dict()["runs"]
    masters = list(range(0, seeds, batch))
    for idx in masters:
        if serial_rows[idx] != lock_rows[idx]:
            raise RuntimeError(
                f"lockstep sweep master lane {serial_rows[idx]['label']} "
                f"diverged from the per-seed sweep — the master lane "
                f"must be byte-identical")
    events_total = sum(run.events for run in serial.runs)
    eq_serial = events_total / serial_wall
    eq_lock = events_total / lock_wall
    return {
        "seeds": seeds,
        "batch": batch,
        "run_minutes": run_minutes,
        "events_total": events_total,
        "serial": {"wall_s": serial_wall, "events_per_s_equiv": eq_serial},
        "lockstep": {"wall_s": lock_wall, "events_per_s_equiv": eq_lock},
        "lockstep_speedup": serial_wall / lock_wall,
        "master_lanes_identical": True,
    }


def _flatten(prefix: str, value: object, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}/{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = value


def compare_to_baseline(name: str, result: Dict[str, object],
                        baseline: Dict[str, object]) -> List[str]:
    """Human-readable comparison lines, one per shared metric.

    The baseline declares its tolerance policy: metrics listed under
    ``exact_metrics`` must match bit for bit, everything else numeric is
    checked against ``relative_tolerance``.
    """
    lines: List[str] = []
    trial_base = baseline.get("trials", {}).get(name)
    if trial_base is None:
        return [f"{name}: no baseline recorded"]
    exact = set(baseline.get("exact_metrics", []))
    rel_tol = float(baseline.get("relative_tolerance", 1e-9))
    flat_now: Dict[str, object] = {}
    flat_base: Dict[str, object] = {}
    _flatten("", result, flat_now)
    _flatten("", trial_base, flat_base)
    wall_base = flat_base.get("wall_s")
    for key, base_val in sorted(flat_base.items()):
        now_val = flat_now.get(key)
        if now_val is None:
            continue
        if key in ("wall_s", "events_per_s", "sim_s_per_wall_s"):
            continue  # timing handled below
        leaf = key.rsplit("/", 1)[-1]
        if leaf in exact or key in exact:
            status = ("EXACT" if now_val == base_val
                      else f"MISMATCH base={base_val} now={now_val}")
            lines.append(f"  {name}/{key}: {status}")
        elif isinstance(base_val, (int, float)):
            ref = max(abs(float(base_val)), 1e-12)
            drift = abs(float(now_val) - float(base_val)) / ref
            verdict = "ok" if drift <= rel_tol else f"EXCEEDS {rel_tol:g}"
            lines.append(f"  {name}/{key}: drift {drift:.3e} ({verdict})")
    if isinstance(wall_base, (int, float)) and result.get("wall_s"):
        speedup = float(wall_base) / float(result["wall_s"])
        lines.insert(0, (f"  {name}/wall_s: baseline {wall_base:.2f}s "
                         f"now {result['wall_s']:.2f}s "
                         f"speedup {speedup:.2f}x"))
    return lines


def measure_obs_overhead(name: str, macro: bool,
                         trace: bool = False,
                         trace_sample: Optional[int] = None
                         ) -> Dict[str, object]:
    """One lockstep overhead measurement of trial ``name``.

    ``trace=False`` prices the standard observability context against
    a blind system.  ``trace=True`` prices causal tracing against the
    standard observability context — the off side is then itself
    obs-instrumented (profiler and all), so the ratio isolates the
    *marginal* cost of tracing, the quantity the tracing budget
    bounds; the obs context's own overhead is gated separately by the
    ``trace=False`` measurement, and folding it into the baseline
    would double-count it.  The default ``trace_sample`` is the
    shipped head-sampling stride; pass 1 to price full-fidelity
    tracing of every sensing epoch.

    A blind and an instrumented system advance through the same trial
    horizon in alternating :data:`OBS_CHUNK_S` chunks; each chunk
    yields one paired wall-clock ratio, and the overhead is the median
    ratio over all chunks.  Adjacent chunks see (nearly) the same
    machine conditions and the median discards the chunks a noisy
    neighbour or cgroup throttle landed on — summed whole-side wall
    clocks on a shared box swing by ±10%, an order of magnitude more
    than the effect measured here.  Which side runs first alternates
    per chunk to cancel residual within-pair drift and shared-cache
    warmup advantage.  The systems are independent (own RNG
    registries, own queues); only the process-global psychrometrics
    cache is shared, which affects speed symmetrically and results
    not at all.
    """
    from repro.obs import create_observability
    from repro.obs.collect import obs_payload

    if trace:
        base_obs = create_observability(profile=True)
        blind, sim_s = _BUILDERS[name](macro, obs=base_obs)
    else:
        blind, sim_s = _BUILDERS[name](macro)
    obs = create_observability(profile=True, trace=trace,
                               trace_sample=trace_sample)
    instrumented, _ = _BUILDERS[name](macro, obs=obs)
    blind.start()
    instrumented.start()
    perf = time.perf_counter
    wall_off = 0.0
    wall_on = 0.0
    ratios: List[float] = []
    start_t = blind.sim.now
    chunks = max(1, round(sim_s / OBS_CHUNK_S))
    # Cyclic GC off during the timed region, like timeit: by this
    # point the process heap holds every earlier trial's results, so a
    # full collection landing inside a ~40ms chunk dwarfs the effect
    # being measured — and the instrumented side allocates more, so
    # the pauses land on it asymmetrically and read as overhead.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(1, chunks + 1):
            horizon = start_t + sim_s * i / chunks
            first, second = ((blind, instrumented) if i % 2
                             else (instrumented, blind))
            t0 = perf()
            first.sim.run_until(horizon)
            t1 = perf()
            second.sim.run_until(horizon)
            t2 = perf()
            off, on = ((t1 - t0, t2 - t1) if i % 2
                       else (t2 - t1, t1 - t0))
            wall_off += off
            wall_on += on
            if off > 0.0:
                ratios.append(on / off)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    blind.finalize()
    instrumented.finalize()
    chunk_ratios = list(ratios)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2] if ratios else 1.0
    return {
        "wall_s_off": wall_off,
        "wall_s_on": wall_on,
        "overhead_pct": (median_ratio - 1.0) * 100.0,
        "chunk_ratios": chunk_ratios,
        "hashes_equal": (discrete_log_hash(blind)
                         == discrete_log_hash(instrumented)),
        "events_dispatched_equal": (blind.sim.events_dispatched
                                    == instrumented.sim.events_dispatched),
        "obs_payload": obs_payload(instrumented, obs),
    }


def run_obs_section(report: Dict[str, object],
                    names: List[str],
                    macro: bool,
                    repeat: int,
                    telemetry_dir: Optional[str] = None) -> bool:
    """Measure observability overhead in lockstep and score it.

    Each trial is measured by :func:`measure_obs_overhead` —
    chunk-interleaved so shared-machine noise cancels — ``repeat``
    times.  The gated overhead is the median over *all* chunk ratios
    pooled across rounds: per-round medians share whatever throttle
    regime their round ran under, so the median-of-medians of a few
    rounds inherits that correlated bias, while the pooled median sees
    every chunk pair individually (a few hundred samples) and is an
    order of magnitude steadier on a shared box.  Each trial is then
    measured again with causal tracing enabled at its shipped
    head-sampling stride — against the standard obs context this
    time, isolating tracing's marginal cost — scored against the same
    budget and recorded under the trial's ``trace`` key; one extra
    informational round prices full-fidelity tracing (stride 1)
    without gating the budget.
    Returns False (and still records the section) if any trial blew
    the wall-clock budget or — far worse — diverged from the blind
    run's discrete hash, which would mean telemetry perturbs the
    simulation.
    """
    obs_report: Dict[str, object] = {}
    report["obs"] = obs_report
    payloads: Dict[str, Dict[str, object]] = {}
    ok = True

    def pooled_pct(rounds: List[Dict[str, object]]) -> float:
        pooled = sorted(r for rnd in rounds
                        for r in rnd["chunk_ratios"])
        if not pooled:
            return 0.0
        return (pooled[len(pooled) // 2] - 1.0) * 100.0

    for name in names:
        print(f"measuring {name} observability overhead "
              f"(lockstep, {repeat} interleaved rounds)...", flush=True)
        rounds = [measure_obs_overhead(name, macro)
                  for _ in range(repeat)]
        rounds.sort(key=lambda r: r["overhead_pct"])
        picked = rounds[len(rounds) // 2]
        overhead_pct = pooled_pct(rounds)
        hashes_equal = all(r["hashes_equal"] for r in rounds)
        events_equal = all(r["events_dispatched_equal"] for r in rounds)
        payload = picked.pop("obs_payload")
        payloads[name] = payload
        obs_report[name] = {
            "wall_s_off": picked["wall_s_off"],
            "wall_s_on": picked["wall_s_on"],
            "overhead_pct": overhead_pct,
            "overhead_pct_rounds": [r["overhead_pct"] for r in rounds],
            "overhead_estimator": "pooled_median_chunk_ratio",
            "chunks_pooled": sum(len(r["chunk_ratios"]) for r in rounds),
            "overhead_budget_pct": OBS_OVERHEAD_BUDGET_PCT,
            "within_budget": overhead_pct <= OBS_OVERHEAD_BUDGET_PCT,
            "hashes_equal": hashes_equal,
            "events_dispatched_equal": events_equal,
            "events_emitted": len(payload["events"]),
            "profile": payload["profile"],
        }
        print(f"  obs wall {picked['wall_s_on']:.2f}s vs blind "
              f"{picked['wall_s_off']:.2f}s | "
              f"overhead {overhead_pct:+.2f}% "
              f"(budget {OBS_OVERHEAD_BUDGET_PCT:.1f}%) | "
              f"hashes {'equal' if hashes_equal else 'DIVERGED'}")
        if (overhead_pct > OBS_OVERHEAD_BUDGET_PCT or not hashes_equal
                or not events_equal):
            ok = False

        print(f"measuring {name} tracing overhead "
              f"(lockstep, {repeat} interleaved rounds)...", flush=True)
        trace_rounds = [measure_obs_overhead(name, macro, trace=True)
                        for _ in range(repeat)]
        trace_rounds.sort(key=lambda r: r["overhead_pct"])
        trace_picked = trace_rounds[len(trace_rounds) // 2]
        trace_pct = pooled_pct(trace_rounds)
        trace_hashes = all(r["hashes_equal"] for r in trace_rounds)
        trace_events = all(r["events_dispatched_equal"]
                           for r in trace_rounds)
        trace_payload = trace_picked.pop("obs_payload")
        trace_block = trace_payload.get("trace") or {}
        trace_summary = trace_block.get("summary") or {}
        obs_report[name]["trace"] = {
            "wall_s_off": trace_picked["wall_s_off"],
            "wall_s_on": trace_picked["wall_s_on"],
            "overhead_pct": trace_pct,
            "overhead_pct_rounds": [r["overhead_pct"]
                                    for r in trace_rounds],
            "overhead_estimator": "pooled_median_chunk_ratio",
            "chunks_pooled": sum(len(r["chunk_ratios"])
                                 for r in trace_rounds),
            "overhead_baseline": "obs",
            "overhead_budget_pct": OBS_OVERHEAD_BUDGET_PCT,
            "within_budget": trace_pct <= OBS_OVERHEAD_BUDGET_PCT,
            "sample_every": trace_summary.get("sample_every", 0),
            "hashes_equal": trace_hashes,
            "events_dispatched_equal": trace_events,
            "spans_emitted": len(trace_block.get("spans", ())),
            "traces": trace_summary.get("traces", 0),
            "sampled_out": trace_summary.get("sampled_out", 0),
        }
        print(f"  trace wall {trace_picked['wall_s_on']:.2f}s vs obs "
              f"{trace_picked['wall_s_off']:.2f}s | "
              f"marginal overhead {trace_pct:+.2f}% "
              f"(budget {OBS_OVERHEAD_BUDGET_PCT:.1f}%, sampling 1/"
              f"{trace_summary.get('sample_every', '?')}) | "
              f"hashes {'equal' if trace_hashes else 'DIVERGED'}")
        if (trace_pct > OBS_OVERHEAD_BUDGET_PCT or not trace_hashes
                or not trace_events):
            ok = False

        # Full-fidelity tracing (every sensing epoch) is priced too,
        # one round, informational only: it documents what the default
        # head sampling buys rather than gating the budget — per-frame
        # span hooks in pure Python cannot meet 3% at stride 1 on a
        # macro-accelerated trial, which is exactly why sampling is
        # the shipped default.
        print(f"pricing {name} full-fidelity tracing "
              "(stride 1, informational)...", flush=True)
        full = measure_obs_overhead(name, macro, trace=True,
                                    trace_sample=1)
        full_payload = full.pop("obs_payload")
        full_block = full_payload.get("trace") or {}
        full_summary = full_block.get("summary") or {}
        obs_report[name]["trace"]["full_fidelity"] = {
            "wall_s_off": full["wall_s_off"],
            "wall_s_on": full["wall_s_on"],
            "overhead_pct": float(full["overhead_pct"]),
            "overhead_baseline": "obs",
            "sample_every": 1,
            "informational": True,
            "hashes_equal": full["hashes_equal"],
            "events_dispatched_equal": full["events_dispatched_equal"],
            "spans_emitted": len(full_block.get("spans", ())),
            "traces": full_summary.get("traces", 0),
        }
        print(f"  full-fidelity overhead {full['overhead_pct']:+.2f}% "
              f"({full_summary.get('traces', 0)} traces, "
              "not budget-gated)")
        if not full["hashes_equal"] or not full["events_dispatched_equal"]:
            ok = False
    if telemetry_dir is not None:
        from repro.obs.status import write_run_telemetry

        manifest = report.get("manifest")
        assert isinstance(manifest, dict)
        paths = write_run_telemetry(telemetry_dir, manifest,
                                    list(payloads), payloads)
        print(f"wrote telemetry: {', '.join(paths)}")
    return ok


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Time the paper trials and write a benchmark report")
    parser.add_argument("--trial", choices=["hvac", "network", "all"],
                        default="all")
    parser.add_argument("--no-macro", action="store_true",
                        help="disable macro-stepped physics "
                             "(reference scheduling)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each trial N times, report the best "
                             "wall clock (domain metrics must match)")
    parser.add_argument("--workers", type=int, default=0,
                        help="also run the parallel fan-out section "
                             "with this many workers (0: skip)")
    parser.add_argument("--parallel-runs", type=int, default=PARALLEL_RUNS,
                        help="independent seeded runs in the parallel "
                             "section")
    parser.add_argument("--grid", metavar="ZONES", default=None,
                        help="also run the vector-core scaling section "
                             "over these comma-separated grid sizes "
                             "(e.g. 4,32,128)")
    parser.add_argument("--grid-seeds", type=int, default=GRID_BATCH_SEEDS,
                        help="seed replicas in the lockstep batch of "
                             "the grid section")
    parser.add_argument("--sweep-lockstep", type=int, default=0,
                        metavar="BATCH",
                        help="also compare a per-seed sweep against a "
                             "lockstep-backed sweep with groups of "
                             "BATCH replicas (0: skip)")
    parser.add_argument("--obs", action="store_true",
                        help="rerun the trials with observability on; "
                             "record the wall-clock overhead and assert "
                             f"it stays under {OBS_OVERHEAD_BUDGET_PCT}%% "
                             "with bit-identical discrete hashes")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="write the instrumented trials' telemetry "
                             "artifacts into this directory "
                             "(implies --obs)")
    parser.add_argument("-o", "--output", default="BENCH_2.json",
                        help="report path (default: BENCH_2.json)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="seed baseline to compare against")
    args = parser.parse_args(argv)

    names = ["hvac", "network"] if args.trial == "all" else [args.trial]
    macro = not args.no_macro
    measure_obs = args.obs or args.telemetry is not None
    from repro.obs.manifest import build_manifest

    report: Dict[str, object] = {
        "config": {"physics_macro_step": macro, "seed": 7,
                   "repeat": args.repeat},
        "manifest": build_manifest(
            command="bench",
            config_dict={"trials": names, "physics_macro_step": macro,
                         "repeat": args.repeat, "obs": measure_obs},
            seed=7),
        "trials": {},
    }
    baseline = load_baseline(Path(args.baseline))
    for name in names:
        print(f"running {name} trial "
              f"({'macro' if macro else 'reference'} physics, "
              f"best of {args.repeat})...",
              flush=True)
        result = run_best_of(name, macro=macro, repeat=args.repeat)
        report["trials"][name] = result
        print(f"  wall {result['wall_s']:.2f}s | "
              f"{result['events']} events | "
              f"{result['events_per_s']:,.0f} events/s | "
              f"{result['sim_s_per_wall_s']:,.0f} sim-s/wall-s")
        if baseline is not None:
            speedups = report.setdefault("speedup_vs_baseline", {})
            trial_base = baseline.get("trials", {}).get(name, {})
            wall_base = trial_base.get("wall_s")
            if isinstance(wall_base, (int, float)):
                assert isinstance(speedups, dict)
                speedups[name] = wall_base / result["wall_s"]
            for line in compare_to_baseline(name, result, baseline):
                print(line)
    if measure_obs:
        budget_ok = run_obs_section(report, names, macro=macro,
                                    repeat=args.repeat,
                                    telemetry_dir=args.telemetry)
        if not budget_ok:
            with open(args.output, "w") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.output}")
            print("observability overhead budget FAILED", file=sys.stderr)
            return 1
    if args.grid:
        zone_counts = [int(z) for z in args.grid.split(",") if z]
        print(f"running grid scaling section (zones: "
              f"{', '.join(map(str, zone_counts))}; "
              f"batch of {args.grid_seeds} seeds)...", flush=True)
        report["grid"] = run_grid_section(zone_counts,
                                          batch_seeds=args.grid_seeds,
                                          repeat=args.repeat)
    if args.sweep_lockstep > 0:
        print(f"running lockstep-sweep section "
              f"({SWEEP_LOCKSTEP_SEEDS} seeds, groups of "
              f"{args.sweep_lockstep})...", flush=True)
        sweep_section = run_sweep_lockstep_section(args.sweep_lockstep)
        report["sweep_lockstep"] = sweep_section
        print(f"  per-seed {sweep_section['serial']['wall_s']:.2f}s vs "
              f"lockstep {sweep_section['lockstep']['wall_s']:.2f}s | "
              f"{sweep_section['lockstep']['events_per_s_equiv']:,.0f} "
              f"ev/s-eq | speedup "
              f"{sweep_section['lockstep_speedup']:.2f}x | master lanes "
              f"identical", flush=True)
    if args.workers > 0:
        print(f"running parallel section ({args.workers} workers, "
              f"{args.parallel_runs} runs)...", flush=True)
        parallel = run_parallel_section(args.workers,
                                        runs=args.parallel_runs)
        report["parallel"] = parallel
        print(f"  pooled {parallel['wall_s']:.2f}s vs serial "
              f"{parallel['serial_wall_s']:.2f}s | "
              f"{parallel['agg_sim_s_per_wall_s']:,.0f} "
              f"aggregate sim-s/wall-s | "
              f"speedup {parallel['parallel_speedup']:.2f}x on "
              f"{parallel['cpu_count']} core(s)")
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
