"""Configuration of a BubbleZERO run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import parse_clock


@dataclass(frozen=True)
class NetworkConfig:
    """Wireless-layer configuration."""

    enabled: bool = True                 # False => wired/direct control
    bt_mode: str = "adaptive"            # "adaptive" (BT-ADPT) or "fixed"
    ac_schedule_adaptation: bool = True  # AC-device desynchronisation
    loss_probability: float = 0.02
    histogram_slots: int = 40            # the paper's default N
    track_oracle: bool = True            # score decisions vs exact clustering

    def __post_init__(self) -> None:
        if self.bt_mode not in ("adaptive", "fixed"):
            raise ValueError(f"unknown bt_mode: {self.bt_mode!r}")
        if not (0 <= self.loss_probability < 1):
            raise ValueError("loss probability must be in [0, 1)")


@dataclass(frozen=True)
class ComfortConfig:
    """Occupant targets (the paper's: 25 degC, 18 degC dew point)."""

    preferred_temp_c: float = 25.0
    preferred_rh_percent: float = 65.2   # yields ~18.0 degC dew at 25 degC
    co2_target_ppm: float = 800.0


@dataclass(frozen=True)
class OutdoorConfig:
    """The paper's afternoon: 28.9 degC dry bulb, 27.4 degC dew point."""

    temp_c: float = 28.9
    dew_point_c: float = 27.4


@dataclass(frozen=True)
class BubbleZeroConfig:
    """Everything a reproducible run needs."""

    seed: int = 1
    start_time_s: float = field(default_factory=lambda: parse_clock("13:00"))
    physics_dt_s: float = 1.0
    record_period_s: float = 10.0
    # Integrate event-free gaps between physics ticks in one closed-form
    # step of the room's RC network instead of dispatching one Euler
    # tick per second (see DESIGN.md, "Performance architecture").  The
    # scheduler only engages it when no other event is queued inside the
    # gap, so trajectories match plain 1 Hz stepping within the
    # documented tolerance; set False to force the reference behaviour.
    physics_macro_step: bool = True
    # Advance the plant through the structure-of-arrays fused kernel
    # (repro.physics.vector) instead of the per-object scalar loop.  The
    # two paths are bit-identical — the vector core repeats every
    # floating-point expression of the scalar one — so this only changes
    # speed; set False to run the scalar reference implementation.
    physics_vector: bool = True
    # Macro-gap eigensolver: "dense" is the reference oracle (general
    # inv/eig/inv, bit-pinned by every golden); "structured" exploits
    # the coupling matrix's symmetry under the capacity scaling
    # (symmetrised eigh — real arithmetic, ~O(10x) faster factorisation)
    # and is what makes 512/1024-zone grids tractable.  The two agree
    # only to roundoff, so "structured" is opt-in per scenario and the
    # registered large-grid scenarios are its only default users.
    physics_solver: str = "dense"
    network: NetworkConfig = NetworkConfig()
    comfort: ComfortConfig = ComfortConfig()
    outdoor: OutdoorConfig = OutdoorConfig()

    def __post_init__(self) -> None:
        if self.physics_dt_s <= 0:
            raise ValueError("physics step must be positive")
        if self.record_period_s <= 0:
            raise ValueError("record period must be positive")
        if self.physics_solver not in ("dense", "structured"):
            raise ValueError(
                f"unknown physics_solver {self.physics_solver!r}; "
                "expected 'dense' or 'structured'")
