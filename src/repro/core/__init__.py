"""Core assembly: configuration, plant, and the BubbleZero system."""

from repro.core.config import (
    BubbleZeroConfig,
    ComfortConfig,
    NetworkConfig,
    OutdoorConfig,
)
from repro.core.plant import Plant, PanelLoop, VentUnit, PANEL_SUBSPACES
from repro.core.system import BubbleZero

__all__ = [
    "BubbleZeroConfig",
    "ComfortConfig",
    "NetworkConfig",
    "OutdoorConfig",
    "Plant",
    "PanelLoop",
    "VentUnit",
    "PANEL_SUBSPACES",
    "BubbleZero",
]
