"""The assembled BubbleZERO system — the library's main entry point.

``BubbleZero`` wires together the simulator, the physical plant, the
wireless network, the sensor fleet and the control boards, schedules
workload events, and runs the experiment.  It is the simulation
counterpart of the whole laboratory.

Typical use::

    from repro import BubbleZero, BubbleZeroConfig

    system = BubbleZero(BubbleZeroConfig(seed=7))
    system.start()
    system.run(hours=1.75)
    print(system.plant.cop_report())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.degradation import COMFORT_BAND_K
from repro.control.radiant import RadiantInputs
from repro.control.ventilation import VentilationInputs
from repro.core.config import BubbleZeroConfig
from repro.core.plant import Plant
from repro.obs.events import (
    COMFORT_BREACH,
    COMFORT_CLEARED,
    DEW_BREACH,
    DEW_CLEARED,
)
from repro.scenarios.topology import SystemTopology, paper_topology
from repro.devices.boards import (
    Board,
    ControlC1,
    ControlC2,
    ControlV1,
    ControlV2,
    ControlV3,
    CONTROL_PERIOD_S,
)
from repro.devices.btnode import BtSensorNode, TransmissionMode
from repro.devices.sensors import SensorModel
from repro.net.adaptive import AdaptivePolicy
from repro.net.medium import BroadcastMedium, Sniffer
from repro.net.packet import DataType
from repro.physics.weather import ConstantWeather, WeatherModel
from repro.sim.engine import (
    Event,
    Simulator,
    PRIORITY_CONTROL,
    PRIORITY_MONITOR,
    PRIORITY_PHYSICS,
)
from repro.sim.process import PeriodicTask
from repro.workloads.events import (
    DoorEvent,
    EventScript,
    OccupancyChange,
    WindowEvent,
)


# Longest event-free gap the macro physics scheduler integrates in one
# closed-form step, in physics ticks.  Bounds the single-shot error of
# the hydronic components (whose time constants are minutes) and keeps
# any one firing cheap; gaps longer than this are simply split.
_MACRO_MAX_TICKS = 60


class BubbleZero:
    """The full distributed HVAC system."""

    def __init__(self, config: Optional[BubbleZeroConfig] = None,
                 weather: Optional[WeatherModel] = None,
                 obs=None,
                 topology: Optional[SystemTopology] = None,
                 controller: str = "pid") -> None:
        from repro.control.policy import build_policy
        self.config = config or BubbleZeroConfig()
        self.topology = topology or paper_topology()
        self.controller_name = controller
        self.policy = build_policy(controller)
        self.sim = Simulator(seed=self.config.seed,
                             start_time=self.config.start_time_s,
                             obs=obs)
        self.weather = weather or ConstantWeather(
            self.config.outdoor.temp_c, self.config.outdoor.dew_point_c)
        self.plant = Plant(self.weather, topology=self.topology,
                           vector=self.config.physics_vector,
                           solver=self.config.physics_solver)
        self.bt_nodes: List[BtSensorNode] = []
        self.boards: List[Board] = []
        self.medium: Optional[BroadcastMedium] = None
        self.sniffer: Optional[Sniffer] = None
        self._direct_loop: Optional[PeriodicTask] = None
        if self.config.network.enabled:
            self._build_network_stack()
        else:
            self._build_direct_stack()
        # Physics runs either as a plain 1 Hz periodic task (the
        # reference behaviour) or through the macro-stepping scheduler,
        # which skips ahead over event-free gaps in one closed-form
        # integration (see _commit_physics).
        self._physics_task: Optional[PeriodicTask] = None
        self._physics_pending: Optional[Event] = None
        self._physics_last = 0.0
        self._physics_ticks = 1
        self.physics_macro_steps = 0
        self.physics_unit_steps = 0
        # Distinct event name per physics backend so the stride-sampled
        # profiler attributes the vector core as its own component.
        self._physics_event_name = ("physics-vector"
                                    if self.config.physics_vector
                                    else "physics")
        if not self.config.physics_macro_step:
            self._physics_task = PeriodicTask(
                self.sim, self._physics_event_name,
                self.config.physics_dt_s,
                self._physics_step, priority=PRIORITY_PHYSICS,
                phase=self.config.physics_dt_s)
        self._recorder_task = PeriodicTask(
            self.sim, "recorder", self.config.record_period_s, self._record,
            priority=PRIORITY_MONITOR, phase=0.0)
        # Last observed comfort/dew breach state, per zone and panel.
        # The recorder flips these and emits comfort.*/dew.* transition
        # events (the SLO scorer's raw material) — pure bookkeeping on
        # the existing sampling grid, so observation stays passive.
        self._comfort_breached = [False] * self.topology.zone_count
        self._dew_breached = [False] * self.topology.panel_count
        self._started = False
        # Lockstep batch driver (repro.runtime.lockstep): when attached,
        # this system becomes the *master* of a replica batch — its event
        # schedule is unchanged, but every physics gap and control step
        # is mirrored to the driver, which advances the other replicas
        # on the identical timeline.
        self._lockstep = None
        self.supervisor = self._build_supervisor()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_network_stack(self) -> None:
        net = self.config.network
        self.medium = BroadcastMedium(
            self.sim, loss_probability=net.loss_probability)
        self.sniffer = Sniffer()
        self.medium.attach_sniffer(self.sniffer)

        mode = (TransmissionMode.ADAPTIVE if net.bt_mode == "adaptive"
                else TransmissionMode.FIXED)
        rng = self.sim.rng
        room = self.plant.room

        def make_node(device_id: str, data_type: DataType, key,
                      measure, noise: float, quantum: float) -> BtSensorNode:
            sensor = SensorModel(device_id, measure, rng, noise_std=noise,
                                 offset_std=noise, quantum=quantum)
            policy = AdaptivePolicy.for_type(
                data_type, histogram_slots=net.histogram_slots)
            node = BtSensorNode(self.sim, self.medium, device_id, data_type,
                                key, sensor, mode=mode, policy=policy,
                                track_oracle=net.track_oracle)
            self.bt_nodes.append(node)
            return node

        # One room/ceiling temperature+humidity quartet per zone, in the
        # exact id order SystemTopology.sensor_node_ids() declares.
        for i in range(self.topology.zone_count):
            make_node(f"bt-room-temp-{i}", DataType.TEMPERATURE, ("room", i),
                      lambda i=i: room.state_of(i).temp_c, 0.012, 0.01)
            make_node(f"bt-room-hum-{i}", DataType.HUMIDITY, ("room", i),
                      lambda i=i: room.state_of(i).relative_humidity(),
                      0.3, 0.05)
            make_node(f"bt-ceil-temp-{i}", DataType.TEMPERATURE,
                      ("ceiling", i),
                      lambda i=i: room.state_of(i).temp_c - 0.2, 0.012, 0.01)
            make_node(f"bt-ceil-hum-{i}", DataType.HUMIDITY, ("ceiling", i),
                      lambda i=i: room.state_of(i).relative_humidity(),
                      0.3, 0.05)

        comfort = self.config.comfort
        adapter = net.ac_schedule_adaptation
        self.boards = [
            ControlC1(self.sim, self.medium, self.plant,
                      use_schedule_adapter=adapter),
            ControlC2(self.sim, self.medium, self.plant,
                      preferred_temp_c=comfort.preferred_temp_c,
                      policy=self.policy,
                      use_schedule_adapter=adapter),
            ControlV1(self.sim, self.medium, self.plant,
                      preferred_temp_c=comfort.preferred_temp_c,
                      preferred_rh_percent=comfort.preferred_rh_percent,
                      policy=self.policy,
                      use_schedule_adapter=adapter),
        ]
        for i in range(self.topology.zone_count):
            self.boards.append(ControlV2(
                self.sim, self.medium, self.plant, i,
                preferred_temp_c=comfort.preferred_temp_c,
                preferred_rh_percent=comfort.preferred_rh_percent,
                policy=self.policy,
                use_schedule_adapter=adapter))
            self.boards.append(ControlV3(
                self.sim, self.medium, self.plant, i,
                use_schedule_adapter=adapter))

    def _build_direct_stack(self) -> None:
        """Wired baseline: controllers read the plant truth directly."""
        comfort = self.config.comfort
        volume = self.plant.room.geometry.subspace_volume_m3
        self._radiant_direct = [
            self.policy.radiant_law(
                f"direct-radiant-{p}",
                preferred_temp_c=comfort.preferred_temp_c,
                pump_curve=self.plant.panel_loops[p].supply_pump.curve,
                panel=p, topology=self.topology)
            for p in range(self.topology.panel_count)
        ]
        self._vent_direct = [
            self.policy.ventilation_law(
                f"direct-vent-{i}", subspace_volume_m3=volume,
                preferred_temp_c=comfort.preferred_temp_c,
                preferred_rh_percent=comfort.preferred_rh_percent, zone=i,
                coil_pump_curve=(
                    self.plant.vent_units[i].airbox.coil_pump.curve),
                topology=self.topology)
            for i in range(self.topology.zone_count)
        ]
        self._direct_loop = PeriodicTask(
            self.sim, "direct-control", CONTROL_PERIOD_S, self._direct_step,
            priority=PRIORITY_CONTROL)

    def _direct_step(self, now: float) -> None:
        plant = self.plant
        room = plant.room
        room_temp = room.mean_temp_c()
        supply = plant.supply_temp_c()
        if self.policy.exchanges_state:
            # Wired consensus exchange: the previous step's agent states
            # circulate in-process (the direct stack has no channel, so
            # the exchange is lossless but still one period delayed).
            states = {i: law.shared_state()
                      for i, law in enumerate(self._vent_direct)
                      if law.shared_state() is not None}
            for law in self._vent_direct:
                law.set_neighbor_states(
                    {j: states[j] for j in law.neighbors if j in states})
            for p, law in enumerate(self._radiant_direct):
                served = self.topology.panel_zones[p]
                law.set_zone_estimates(
                    {z: states[z] for z in served if z in states})
        for p, controller in enumerate(self._radiant_direct):
            served = self.topology.panel_zones[p]
            ceiling_dew = max(room.state_of(s).dew_point_c for s in served)
            command = controller.step(RadiantInputs(
                room_temp_c=room_temp,
                ceiling_dew_point_c=ceiling_dew,
                supply_temp_c=supply,
                return_temp_c=plant.panel_return_temp_c(p),
            ), CONTROL_PERIOD_S)
            loop = plant.panel_loops[p]
            loop.supply_pump.set_voltage(command.supply_voltage)
            loop.recycle_pump.set_voltage(command.recycle_voltage)
        for i, controller in enumerate(self._vent_direct):
            state = room.state_of(i)
            command = controller.step(VentilationInputs(
                room_temp_c=state.temp_c,
                room_dew_point_c=state.dew_point_c,
                room_co2_ppm=state.co2_ppm,
                supply_water_temp_c=supply,
                airbox_out_dew_point_c=plant.airbox_outlet_dew_c(i),
            ), CONTROL_PERIOD_S)
            unit = plant.vent_units[i]
            unit.airbox.set_coil_pump_voltage(command.coil_pump_voltage)
            unit.airbox.set_fan_flow_demand(command.fan_flow_demand_m3s)
            unit.flap.command(command.flap_open)
        if self._lockstep is not None:
            self._lockstep.on_control(now)

    def attach_lockstep(self, driver) -> None:
        """Make this system the master of a lockstep replica batch.

        ``driver`` (see :mod:`repro.runtime.lockstep`) receives
        ``on_gap(now, ticks, dt)`` after every physics firing and
        ``on_control(now)`` after every direct control step, in exactly
        the order the master executes them, so the replica batch shares
        the master's event timeline without scheduling any events of
        its own.
        """
        self._lockstep = driver

    def _build_supervisor(self):
        """Register every controller with a shared supervisor, so
        occupant preference changes (and strategies like occupancy
        setback) reach all of them at once."""
        from repro.control.supervisor import OccupantPreferences, Supervisor
        comfort = self.config.comfort
        supervisor = Supervisor(OccupantPreferences(
            temp_c=comfort.preferred_temp_c,
            rh_percent=comfort.preferred_rh_percent,
            co2_ppm=comfort.co2_target_ppm))
        supervisor.obs = self.sim.obs
        from repro.devices.boards import ControlC2, ControlV1, ControlV2
        for board in self.boards:
            board.supervisor = supervisor
            if isinstance(board, ControlC2):
                for controller in board.controllers:
                    supervisor.register_radiant(controller)
            elif isinstance(board, ControlV1):
                for controller in board.controllers:
                    supervisor.register_ventilation(controller)
            elif isinstance(board, ControlV2):
                supervisor.register_ventilation(board.controller)
        if self._direct_loop is not None:
            for controller in self._radiant_direct:
                supervisor.register_radiant(controller)
            for controller in self._vent_direct:
                supervisor.register_ventilation(controller)
        return supervisor

    def total_occupancy(self) -> float:
        """Current total headcount (ground truth for setback studies)."""
        return sum(self.plant.occupants)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the system: physics, sensors, boards, recording."""
        if self._started:
            return
        self._started = True
        if self._physics_task is not None:
            self._physics_task.start()
        self._recorder_task.start()
        for node in self.bt_nodes:
            node.start()
        for board in self.boards:
            board.start()
        if self._direct_loop is not None:
            self._direct_loop.start()
        if self._physics_task is None:
            # Macro mode commits the first physics firing only after
            # every other task has queued its first event, so the gap
            # scan in _commit_physics sees the complete schedule.
            # Physics is alone at its priority level, so starting it
            # last cannot reorder same-instant dispatches.
            self._physics_last = self.sim.clock.now
            self._commit_physics()

    def run(self, seconds: Optional[float] = None,
            minutes: Optional[float] = None,
            hours: Optional[float] = None) -> None:
        """Advance the experiment by the given duration."""
        total = 0.0
        total += seconds or 0.0
        total += (minutes or 0.0) * 60.0
        total += (hours or 0.0) * 3600.0
        if total <= 0:
            raise ValueError("run duration must be positive")
        if not self._started:
            self.start()
        self.sim.run(total)
        if self._physics_pending is not None:
            self._flush_physics()

    def finalize(self) -> None:
        """Close energy accounting (call once, after the last run)."""
        for node in self.bt_nodes:
            node.finalize(self.sim.now)

    # ------------------------------------------------------------------
    # Workload events
    # ------------------------------------------------------------------
    def schedule_script(self, script: EventScript) -> None:
        for event in script.events:
            if isinstance(event, DoorEvent):
                self.schedule_door(event.start, event.duration,
                                   event.fraction)
            elif isinstance(event, WindowEvent):
                self.schedule_window(event.start, event.duration,
                                     event.fraction)
            elif isinstance(event, OccupancyChange):
                self.sim.schedule_at(
                    event.time,
                    lambda e=event: self.plant.set_occupants(
                        e.subspace, e.occupants),
                    name=f"occupancy/{event.subspace}")

    def schedule_door(self, start: float, duration: float,
                      fraction: float = 1.0) -> None:
        """Open the door at ``start`` (absolute) for ``duration`` s."""
        self.sim.schedule_at(start,
                             lambda: self.plant.set_door(fraction),
                             name="door-open")
        self.sim.schedule_at(start + duration,
                             lambda: self.plant.set_door(0.0),
                             name="door-close")

    def schedule_window(self, start: float, duration: float,
                        fraction: float = 1.0) -> None:
        self.sim.schedule_at(start,
                             lambda: self.plant.set_window(fraction),
                             name="window-open")
        self.sim.schedule_at(start + duration,
                             lambda: self.plant.set_window(0.0),
                             name="window-close")

    # ------------------------------------------------------------------
    # Physics and recording
    # ------------------------------------------------------------------
    def _physics_step(self, now: float) -> None:
        self.plant.step(now, self.config.physics_dt_s)

    def _commit_physics(self) -> None:
        """Schedule the next physics firing (macro mode).

        Scans the queue head for the next pending event.  Nothing can be
        dispatched before that instant, and new events are only created
        by dispatches, so the interval up to it is guaranteed
        event-free: every sensor read and actuator command in it — there
        are none — would have seen per-tick state.  The firing lands on
        the tick grid at or before that event (events exactly on the
        boundary still see fully-integrated state, because physics has
        the lowest priority number and dispatches first at an instant).
        Pending same-instant events make the gap zero ticks wide, which
        clamps to a single tick — the reference path.
        """
        sim = self.sim
        dt = self.config.physics_dt_s
        base = self._physics_last
        # Never schedule into the past: after a flush the clock may sit
        # a fraction of a tick past the last integrated boundary.
        k_min = int((sim.clock.now - base) / dt - 1e-9) + 1
        if k_min < 1:
            k_min = 1
        next_event = sim.queue.peek_time()
        if next_event is None:
            k = k_min
        else:
            k = int((next_event - base) / dt)
            if k < k_min:
                k = k_min
            elif k > _MACRO_MAX_TICKS:
                k = _MACRO_MAX_TICKS
        self._physics_ticks = k
        self._physics_pending = sim.queue.push(
            base + k * dt, PRIORITY_PHYSICS, self._physics_fire,
            self._physics_event_name)

    def _physics_fire(self) -> None:
        self._physics_pending = None
        now = self.sim.clock.now
        k = self._physics_ticks
        dt = self.config.physics_dt_s
        if k == 1:
            self.plant.step(now, dt)
            self.physics_unit_steps += 1
        else:
            self.plant.macro_step(now, k, dt)
            self.physics_macro_steps += 1
        if self._lockstep is not None:
            self._lockstep.on_gap(now, k, dt)
        self._physics_last = now
        self._commit_physics()

    def _flush_physics(self) -> None:
        """Integrate whole ticks left pending at the end of a run.

        A macro gap may straddle the run horizon; without this, state
        inspected between runs (meter snapshots, traces) would lag the
        reference by up to the committed gap.  Only whole ticks are
        integrated — the reference path never integrates partial ones —
        and the next firing is then re-committed on the same grid.
        """
        sim = self.sim
        dt = self.config.physics_dt_s
        k = int((sim.clock.now - self._physics_last) / dt + 1e-9)
        if k <= 0:
            return
        pending = self._physics_pending
        if pending is not None:
            pending.cancel()
            self._physics_pending = None
        now = sim.clock.now
        if k == 1:
            self.plant.step(now, dt)
            self.physics_unit_steps += 1
        else:
            self.plant.macro_step(now, k, dt)
            self.physics_macro_steps += 1
        if self._lockstep is not None:
            self._lockstep.on_gap(now, k, dt)
        self._physics_last = self._physics_last + k * dt
        self._commit_physics()

    def _record(self, now: float) -> None:
        trace = self.sim.trace
        outdoor = self.plant.outdoor(now)
        trace.record("outdoor/temp", now, outdoor.temp_c)
        trace.record("outdoor/dew", now, outdoor.dew_point_c)
        for i, subspace in enumerate(self.plant.room.subspaces):
            trace.record(f"subspace/{i}/temp", now, subspace.state.temp_c)
            trace.record(f"subspace/{i}/dew", now, subspace.state.dew_point_c)
            trace.record(f"subspace/{i}/co2", now, subspace.state.co2_ppm)
        trace.record("tank/18C", now, self.plant.radiant_tank.temp_c)
        trace.record("tank/8C", now, self.plant.vent_tank.temp_c)
        for p, loop in enumerate(self.plant.panel_loops):
            trace.record(f"panel/{p}/mix_temp", now, loop.mix_temp_c)
            trace.record(f"panel/{p}/mix_flow", now, loop.mix_flow_lps)
            if loop.last_result is not None:
                trace.record(f"panel/{p}/heat", now, loop.last_result.heat_w)
                trace.record(f"panel/{p}/surface", now,
                             loop.last_result.surface_temp_c)
        self._slo_probe(now)
        if self._lockstep is not None:
            self._lockstep.on_record(now)

    def _slo_probe(self, now: float) -> None:
        """Emit comfort/dew breach transitions on the recorder grid.

        Observes the same plant state the recorder just traced — no
        randomness, no scheduling — so an observed run stays
        bit-identical to a blind one.  Comfort uses the occupant band
        (preferred +/- COMFORT_BAND_K); a dew breach is a panel surface
        at or below the highest dew point among its served zones (the
        zero-margin accounting of repro.analysis.degradation).
        """
        obs = self.sim.obs
        if not obs.enabled:
            return
        preferred = self.config.comfort.preferred_temp_c
        subspaces = self.plant.room.subspaces
        for i, subspace in enumerate(subspaces):
            breached = (abs(subspace.state.temp_c - preferred)
                        > COMFORT_BAND_K)
            if breached != self._comfort_breached[i]:
                self._comfort_breached[i] = breached
                obs.events.emit(
                    COMFORT_BREACH if breached else COMFORT_CLEARED,
                    now, zone=i)
        for p, loop in enumerate(self.plant.panel_loops):
            if loop.last_result is None:
                continue
            dew_max = max(subspaces[z].state.dew_point_c
                          for z in self.topology.panel_zones[p])
            breached = loop.last_result.surface_temp_c - dew_max <= 0.0
            if breached != self._dew_breached[p]:
                self._dew_breached[p] = breached
                obs.events.emit(
                    DEW_BREACH if breached else DEW_CLEARED,
                    now, panel=p)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def subspace_series(self, index: int, quantity: str = "temp"):
        """(times, values) for one subspace's recorded series."""
        series = self.sim.trace.series(f"subspace/{index}/{quantity}")
        return series.times(), series.values()

    def network_stats(self) -> Dict[str, float]:
        if self.medium is None:
            return {}
        return self.medium.stats()

    def degradation_status(self) -> Dict[str, object]:
        """How gracefully the system is degrading right now.

        Aggregates the supplier-loss bookkeeping of every board (tier-2
        widened-window and tier-3 last-good-with-decay activations, the
        worst estimate staleness seen) with the supervisor's
        conservative-mode latch and the crashed-node roster — the raw
        material of :mod:`repro.analysis.degradation` scoring.
        """
        return {
            "crashed_nodes": sorted(node.device_id
                                    for node in self.bt_nodes
                                    if node.crashed),
            "stuck_sensors": sorted(node.device_id
                                    for node in self.bt_nodes
                                    if node.sensor.is_stuck),
            "degraded_estimates": sum(board.degraded_estimates
                                      for board in self.boards),
            "fallback_estimates": sum(board.fallback_estimates
                                      for board in self.boards),
            "max_staleness_s": max(
                (board.max_staleness_s for board in self.boards),
                default=0.0),
            "conservative_mode": self.supervisor.conservative_mode,
            "conservative_entries": self.supervisor.conservative_entries,
            "conservative_mode_s": self.supervisor.conservative_seconds(
                self.sim.now),
        }

    def adaptive_transmitters(self):
        """All BT-ADPT state machines (empty in fixed/direct modes)."""
        return [node.transmitter for node in self.bt_nodes
                if node.transmitter is not None]
