"""The physical plant: every piece of hardware, wired and integrated.

``Plant`` owns the room model, the two chilled-water tanks and their
chillers, the radiant panel loops (supply pump + recycle pump + mixing
junction + panel), and the per-zone airbox/CO2flap pairs.  Its
``step(dt)`` advances all of it one time step, given whatever actuator
commands the control boards have applied since the last step.

The hardware roster is declared by a
:class:`~repro.scenarios.topology.SystemTopology` — zone count, the
panel->zone map, the coupling graph and the door/window exposure
weights all come from it.  The default is the paper's laboratory
(Fig. 2):

* panel 0 serves subspaces 0 and 1, panel 1 serves subspaces 2 and 3;
* airbox/flap pair ``i`` serves subspace ``i``;
* the 18 degC tank feeds the panel loops, the 8 degC tank the coils.

Chiller capacities and tank volumes scale linearly with zone count
from the paper's 4-zone calibration, so an N-zone declaration gets a
plant sized for its floor area rather than the lab's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.airside.airbox import Airbox, AirboxOutput
from repro.airside.co2flap import CO2Flap
from repro.control.condensation import CondensationGuard
from repro.hydronics.chiller import CarnotFractionChiller
from repro.hydronics.mixing import MixingJunction, MixResult
from repro.hydronics.panel import PanelResult, RadiantPanel
from repro.hydronics.pump import DCPump, PumpCurve
from repro.hydronics.tank import ColdWaterTank
from repro.hydronics.water import WATER_CP, mass_flow
from repro.physics.room import Room, RoomGeometry, SubspaceInputs
from repro.physics.weather import OutdoorState, WeatherModel
from repro.scenarios.topology import SystemTopology, paper_topology

# The paper lab's panel->zone map, kept as a module constant for
# callers that hard-code the 4-zone layout; the live map is
# ``Plant.topology.panel_zones``.
PANEL_SUBSPACES = ((0, 1), (2, 3))

# Condenser approach: heat is rejected a few degrees above outdoor air.
CONDENSER_APPROACH_K = 6.0


@dataclass
class PanelLoop:
    """One radiant ceiling panel and its hydraulic loop."""

    panel: RadiantPanel
    supply_pump: DCPump
    recycle_pump: DCPump
    junction: MixingJunction = field(init=False)
    return_temp_c: float = 22.0
    mix_temp_c: float = 18.0
    mix_flow_lps: float = 0.0
    last_result: Optional[PanelResult] = None

    def __post_init__(self) -> None:
        self.junction = MixingJunction(self.supply_pump, self.recycle_pump)


@dataclass
class VentUnit:
    """One subspace's airbox + CO2flap pair."""

    airbox: Airbox
    flap: CO2Flap
    last_output: Optional[AirboxOutput] = None


class Plant:
    """All BubbleZERO hardware, integrated on a common time step."""

    def __init__(self, weather: WeatherModel,
                 room: Optional[Room] = None,
                 radiant_chiller: Optional[CarnotFractionChiller] = None,
                 vent_chiller: Optional[CarnotFractionChiller] = None,
                 topology: Optional[SystemTopology] = None,
                 vector: bool = False,
                 solver: str = "dense") -> None:
        self.weather = weather
        self.topology = topology or paper_topology()
        topo = self.topology
        self.room = room or Room(
            geometry=RoomGeometry(topo.length_m, topo.width_m,
                                  topo.height_m, topo.zone_count),
            adjacency=topo.adjacency,
            solver=solver)
        n_sub = len(self.room.subspaces)
        if n_sub != topo.zone_count:
            raise ValueError(
                f"room has {n_sub} subspaces but topology "
                f"{topo.name!r} declares {topo.zone_count} zones")

        # Chillers calibrated per DESIGN.md §4, sized linearly from the
        # paper's 4-zone lab (scale 1.0 there, so the products below
        # reproduce the calibrated constants bit for bit).
        scale = topo.zone_count / 4.0
        self.radiant_chiller = radiant_chiller or CarnotFractionChiller(
            "chiller-18C", cold_setpoint_c=18.0, second_law_fraction=0.30,
            parasitic_w=6.0 * scale, capacity_w=2600.0 * scale)
        self.vent_chiller = vent_chiller or CarnotFractionChiller(
            "chiller-8C", cold_setpoint_c=8.0, second_law_fraction=0.30,
            parasitic_w=2.0 * scale, capacity_w=3600.0 * scale)
        self.radiant_tank = ColdWaterTank(
            "tank-18C", self.radiant_chiller, volume_l=150.0 * scale,
            setpoint_c=18.0)
        self.vent_tank = ColdWaterTank(
            "tank-8C", self.vent_chiller, volume_l=100.0 * scale,
            setpoint_c=8.0)

        self.panel_loops: List[PanelLoop] = [
            PanelLoop(
                panel=RadiantPanel(f"panel-{i}"),
                supply_pump=DCPump(f"panel-{i}/supply-pump",
                                   curve=PumpCurve(max_flow_lps=0.20)),
                recycle_pump=DCPump(f"panel-{i}/recycle-pump",
                                    curve=PumpCurve(max_flow_lps=0.20)))
            for i in range(topo.panel_count)
        ]
        self.vent_units: List[VentUnit] = [
            VentUnit(airbox=Airbox(f"airbox-{i}"), flap=CO2Flap(f"flap-{i}"))
            for i in range(n_sub)
        ]
        self.guard = CondensationGuard()
        self.occupants = [0.0] * n_sub
        self.equipment_w = [topo.equipment_w] * n_sub
        self.door_open_fraction = 0.0
        self.window_open_fraction = 0.0
        self.time_integrated_s = 0.0
        self.fan_energy_j = 0.0
        self.flap_energy_j = 0.0
        # Structure-of-arrays fused integrator (bit-identical fast
        # path); imported lazily so the scalar plant never pays for it.
        self._vector_kernel = None
        if vector:
            from repro.physics.vector import VectorPlantKernel
            self._vector_kernel = VectorPlantKernel(self)

    # ------------------------------------------------------------------
    # Truth accessors for the sensor layer
    # ------------------------------------------------------------------
    def outdoor(self, now: float) -> OutdoorState:
        return self.weather.state_at(now)

    def supply_temp_c(self) -> float:
        """T_supp of the radiant loop (18 degC tank)."""
        return self.radiant_tank.temp_c

    def panel_return_temp_c(self, panel_idx: int) -> float:
        return self.panel_loops[panel_idx].return_temp_c

    def panel_mix_temp_c(self, panel_idx: int) -> float:
        return self.panel_loops[panel_idx].mix_temp_c

    def panel_mix_flow_lps(self, panel_idx: int) -> float:
        return self.panel_loops[panel_idx].mix_flow_lps

    def airbox_outlet_dew_c(self, subspace: int) -> float:
        unit = self.vent_units[subspace]
        if unit.last_output is None or unit.last_output.flow_m3s == 0:
            # With the fans stopped, the outlet sensor reads room air.
            return self.room.state_of(subspace).dew_point_c
        return unit.last_output.supply_dew_point_c

    def airbox_outlet_temp_c(self, subspace: int) -> float:
        unit = self.vent_units[subspace]
        if unit.last_output is None or unit.last_output.flow_m3s == 0:
            return self.room.state_of(subspace).temp_c
        return unit.last_output.supply_temp_c

    # ------------------------------------------------------------------
    # Disturbances (workload hooks)
    # ------------------------------------------------------------------
    def set_door(self, fraction: float) -> None:
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("door fraction must be within [0, 1]")
        self.door_open_fraction = fraction

    def set_window(self, fraction: float) -> None:
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("window fraction must be within [0, 1]")
        self.window_open_fraction = fraction

    def set_occupants(self, subspace: int, count: float) -> None:
        if count < 0:
            raise ValueError("occupant count cannot be negative")
        self.occupants[subspace] = count

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float) -> None:
        """Advance the whole plant by ``dt`` seconds."""
        if self._vector_kernel is not None:
            self._vector_kernel.step(now, dt)
            return
        outdoor = self.outdoor(now)
        reject_temp = outdoor.temp_c + CONDENSER_APPROACH_K
        inputs = self._exchange_tick(outdoor, dt)
        self.room.step(dt, outdoor, inputs)
        ambient = self.room.mean_temp_c()
        self.radiant_tank.step(dt, ambient_temp_c=ambient,
                               reject_temp_c=reject_temp)
        self.vent_tank.step(dt, ambient_temp_c=ambient,
                            reject_temp_c=reject_temp)
        self.time_integrated_s += dt

    def macro_step(self, now: float, ticks: int, dt: float) -> None:
        """Advance the plant over an event-free gap of ``ticks * dt``.

        The hydronic and airside loops keep their reference per-tick
        substep — the radiant loop's condensation limit cycle lives in
        second-scale water-side feedback that a single coarse step would
        wash out — while the room's RC network, the expensive part, is
        integrated once over the whole gap in closed form
        (:meth:`Room.macro_step`) with the substep-averaged boundary
        inputs.  Valid only when no sensing/network/control event falls
        inside the gap: actuator commands are then frozen, the room
        states the substeps read drift by mere millikelvin over the few
        seconds involved, and the averaged inputs carry exactly the
        energy the substeps exchanged.
        """
        if self._vector_kernel is not None:
            self._vector_kernel.macro_step(now, ticks, dt)
            return
        outdoor = self.outdoor(now)
        reject_temp = outdoor.temp_c + CONDENSER_APPROACH_K
        # The room is frozen during the gap, so the tank ambient is too.
        ambient = self.room.mean_temp_c()
        n_sub = len(self.room.subspaces)
        heat_sum = [0.0] * n_sub
        flow_sum = [0.0] * n_sub
        flow_temp_sum = [0.0] * n_sub
        flow_w_sum = [0.0] * n_sub
        temp_sum = [0.0] * n_sub
        w_sum = [0.0] * n_sub
        last_inputs = None
        for _ in range(ticks):
            inputs = self._exchange_tick(outdoor, dt)
            self.radiant_tank.step(dt, ambient_temp_c=ambient,
                                   reject_temp_c=reject_temp)
            self.vent_tank.step(dt, ambient_temp_c=ambient,
                                reject_temp_c=reject_temp)
            for i, inp in enumerate(inputs):
                heat_sum[i] += inp.panel_heat_w
                flow_sum[i] += inp.vent_flow_m3s
                # Supply conditions weighted by flow, so the averaged
                # input injects the same sensible/latent totals the
                # substeps produced even while the fans ramp.
                flow_temp_sum[i] += inp.vent_flow_m3s * inp.vent_supply_temp_c
                flow_w_sum[i] += inp.vent_flow_m3s * inp.vent_supply_w
                temp_sum[i] += inp.vent_supply_temp_c
                w_sum[i] += inp.vent_supply_w
            last_inputs = inputs
        averaged: List[SubspaceInputs] = []
        for i in range(n_sub):
            inp = last_inputs[i]
            flow = flow_sum[i] / ticks
            if flow_sum[i] > 0:
                supply_temp = flow_temp_sum[i] / flow_sum[i]
                supply_w = flow_w_sum[i] / flow_sum[i]
            else:
                supply_temp = temp_sum[i] / ticks
                supply_w = w_sum[i] / ticks
            # Occupants, equipment and openings cannot change inside an
            # event-free gap; take them from the last substep.
            averaged.append(SubspaceInputs(
                panel_heat_w=heat_sum[i] / ticks,
                vent_flow_m3s=flow,
                vent_supply_temp_c=supply_temp,
                vent_supply_w=supply_w,
                occupants=inp.occupants,
                equipment_w=inp.equipment_w,
                door_open_fraction=inp.door_open_fraction,
            ))
        self.room.macro_step(ticks * dt, outdoor, averaged)
        self.time_integrated_s += ticks * dt

    def _exchange_tick(self, outdoor: OutdoorState,
                       dt: float) -> List[SubspaceInputs]:
        """One hydronic/airside substep; returns the room's inputs."""
        panel_heat = [0.0] * len(self.room.subspaces)

        # --- radiant panel loops ---------------------------------------
        panel_zones = self.topology.panel_zones
        for idx, loop in enumerate(self.panel_loops):
            served = panel_zones[idx]
            if len(served) == 2:
                # Fast path for pairwise panels (the paper layout):
                # index the two subspaces directly instead of paying
                # generator overhead in the per-tick loop.  The general
                # branch computes bit-identical values for a pair.
                s0, s1 = served
                state0 = self.room.state_of(s0)
                state1 = self.room.state_of(s1)
                states = (state0, state1)
                zone_temp = (state0.temp_c + state1.temp_c) / 2
            else:
                states = tuple(self.room.state_of(s) for s in served)
                zone_temp = (sum(state.temp_c for state in states)
                             / len(states))
            mix: MixResult = loop.junction.mix(
                self.radiant_tank.draw(), loop.return_temp_c)
            result = loop.panel.exchange(mix.flow_lps, mix.temp_c, zone_temp)
            loop.panel.integrate(result, dt)
            loop.last_result = result
            loop.mix_temp_c = mix.temp_c
            loop.mix_flow_lps = mix.flow_lps
            if mix.flow_lps > 0:
                loop.return_temp_c = result.return_temp_c
            else:
                # Stagnant loop water slowly equilibrates with the room,
                # which is what eventually releases the start-up
                # condensation interlock.
                loop.return_temp_c += ((zone_temp - loop.return_temp_c)
                                       * dt / 600.0)
            # Water drawn from the tank returns at panel-outlet temperature.
            self.radiant_tank.accept_return(
                mix.supply_flow_lps, result.return_temp_c, dt)
            share = result.heat_w / len(served)
            for s in served:
                panel_heat[s] += share
            # Condensation guard: panel surface vs local air dew point.
            if mix.flow_lps > 0:
                local_dew = max(state.dew_point_c for state in states)
                if not self.guard.check_dew(result.surface_temp_c, local_dew):
                    self.room.record_condensation()
            loop.supply_pump.integrate(dt)
            loop.recycle_pump.integrate(dt)

        # --- ventilation units ------------------------------------------
        door_weights = self.topology.door_weights
        window_weights = self.topology.window_weights
        inputs: List[SubspaceInputs] = []
        for i, unit in enumerate(self.vent_units):
            # The coil sees whatever the 8 degC tank actually holds; an
            # overloaded tank degrades dehumidification realistically.
            unit.airbox.coil.water_temp_c = self.vent_tank.temp_c
            output = unit.airbox.process(outdoor, dt)
            unit.last_output = output
            unit.flap.step(dt)
            # Supply air only flows freely once the exhaust flap opens;
            # a closed flap throttles the loop to envelope leakage.
            effective_flow = output.flow_m3s * (0.25
                                                + 0.75 * unit.flap.position)
            # Coil load returns warm water to the 8 degC tank.
            if output.coil_water_flow_lps > 0 and output.coil_heat_w > 0:
                m_cp = mass_flow(output.coil_water_flow_lps) * WATER_CP
                coil_return = (self.vent_tank.draw()
                               + output.coil_heat_w / m_cp)
                self.vent_tank.accept_return(
                    output.coil_water_flow_lps, coil_return, dt)
            opening = (self.door_open_fraction * door_weights[i]
                       + 0.8 * self.window_open_fraction * window_weights[i])
            inputs.append(SubspaceInputs(
                panel_heat_w=panel_heat[i],
                vent_flow_m3s=effective_flow,
                vent_supply_temp_c=output.supply_temp_c,
                vent_supply_w=output.supply_humidity_ratio,
                occupants=self.occupants[i],
                equipment_w=self.equipment_w[i],
                door_open_fraction=opening,
            ))
            self.fan_energy_j += output.fan_power_w * dt

        return inputs

    # ------------------------------------------------------------------
    # Energy / COP accounting (paper §V-B)
    # ------------------------------------------------------------------
    def radiant_heat_removed_j(self) -> float:
        return sum(loop.panel.heat_absorbed_j for loop in self.panel_loops)

    def vent_heat_removed_j(self) -> float:
        return sum(unit.airbox.coil.heat_extracted_j
                   for unit in self.vent_units)

    def radiant_power_consumed_j(self) -> float:
        pumps = sum(loop.supply_pump.energy_j + loop.recycle_pump.energy_j
                    for loop in self.panel_loops)
        return self.radiant_chiller.energy_j + pumps

    def vent_power_consumed_j(self) -> float:
        coil_pumps = sum(unit.airbox.coil_pump.energy_j
                         for unit in self.vent_units)
        flaps = sum(unit.flap.energy_j for unit in self.vent_units)
        return (self.vent_chiller.energy_j + coil_pumps
                + self.fan_energy_j + flaps)

    def meter_snapshot(self) -> Dict[str, float]:
        """Cumulative energy meters at this instant.

        Snapshot before and after a steady-state window and difference
        the two to meter rates over that window — exactly how the paper
        reads its power meters for Fig. 11 (steady operation, not the
        cold-start transient).
        """
        return {
            "time_s": self.time_integrated_s,
            "radiant_heat_j": self.radiant_heat_removed_j(),
            "vent_heat_j": self.vent_heat_removed_j(),
            "radiant_power_j": self.radiant_power_consumed_j(),
            "vent_power_j": self.vent_power_consumed_j(),
        }

    @staticmethod
    def cop_between(before: Dict[str, float],
                    after: Dict[str, float]) -> Dict[str, float]:
        """Per-module and overall COP over a metering window."""
        elapsed = after["time_s"] - before["time_s"]
        if elapsed <= 0:
            raise ValueError("metering window must have positive length")
        qr = after["radiant_heat_j"] - before["radiant_heat_j"]
        qv = after["vent_heat_j"] - before["vent_heat_j"]
        pr = after["radiant_power_j"] - before["radiant_power_j"]
        pv = after["vent_power_j"] - before["vent_power_j"]
        report: Dict[str, float] = {
            "radiant_heat_w": qr / elapsed,
            "vent_heat_w": qv / elapsed,
            "radiant_power_w": pr / elapsed,
            "vent_power_w": pv / elapsed,
        }
        if pr > 0:
            report["bubble_c"] = qr / pr
        if pv > 0:
            report["bubble_v"] = qv / pv
        if pr + pv > 0:
            report["bubble_zero"] = (qr + qv) / (pr + pv)
        return report

    def cop_report(self) -> Dict[str, float]:
        """Lifetime COP of each module and the whole system.

        Includes the cold-start transient; for the paper's Fig. 11
        numbers use :meth:`meter_snapshot` + :meth:`cop_between` over a
        steady-state window instead.
        """
        qr = self.radiant_heat_removed_j()
        qv = self.vent_heat_removed_j()
        pr = self.radiant_power_consumed_j()
        pv = self.vent_power_consumed_j()
        report = {}
        if pr > 0:
            report["bubble_c"] = qr / pr
        if pv > 0:
            report["bubble_v"] = qv / pv
        if pr + pv > 0:
            report["bubble_zero"] = (qr + qv) / (pr + pv)
        return report
