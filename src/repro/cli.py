"""Command-line interface: run BubbleZERO experiments without writing code.

Usage::

    python -m repro run --minutes 105 --seed 7 --paper-events \\
        --export-csv traces.csv --export-json summary.json
    python -m repro cop --seed 7
    python -m repro lifetime --hours 2

Each subcommand builds the full system, runs the scenario, and prints a
human-readable report; ``--export-csv`` / ``--export-json`` additionally
persist the traces and outcome summary.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.analysis.export import export_summary_json, export_traces_csv
from repro.core.config import BubbleZeroConfig, NetworkConfig
from repro.scenarios.spec import (
    SCRIPT_BUILDERS,
    WEATHER_BUILDERS,
    ScenarioSpec,
    prepare_run,
)
from repro.sim.clock import format_clock


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BubbleZERO (ICDCS 2014) reproduction runner")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full system")
    run.add_argument("--scenario", metavar="NAME", default=None,
                     help="start from a registered scenario (see "
                          "`repro scenarios`); other flags override "
                          "its fields")
    run.add_argument("--minutes", type=float, default=None,
                     help="simulated duration (default: the scenario's, "
                          "or the paper's 105)")
    run.add_argument("--seed", type=int, default=None,
                     help="RNG seed (default: the scenario's, or 7)")
    run.add_argument("--direct", action="store_true",
                     help="wired control loop (no radio)")
    run.add_argument("--fixed-tx", action="store_true",
                     help="Fixed transmission scheme instead of BT-ADPT")
    run.add_argument("--script", choices=sorted(SCRIPT_BUILDERS),
                     default=None,
                     help="workload script to schedule")
    run.add_argument("--weather", choices=sorted(WEATHER_BUILDERS),
                     default=None,
                     help="weather model (default: the scenario's, or "
                          "the config-driven constant design day)")
    run.add_argument("--paper-events", action="store_true",
                     help="schedule the paper's 14:05/14:25 door events "
                          "(alias for --script paper-phase-two)")
    run.add_argument("--controller", metavar="NAME", default=None,
                     help="control stack to run (see `repro controllers`; "
                          "default: the scenario's, or pid)")
    run.add_argument("--export-csv", metavar="PATH")
    run.add_argument("--export-json", metavar="PATH")
    run.add_argument("--telemetry", metavar="DIR", default=None,
                     help="record the run's observability artifacts "
                          "(events, metrics, health, profile) into "
                          "this directory; the run stays bit-identical")
    run.add_argument("--trace", action="store_true",
                     help="also record causal traces of the "
                          "sensing→actuation pipeline (trace.jsonl in "
                          "the --telemetry directory; requires it)")
    run.add_argument("--trace-sample", type=int, default=None,
                     metavar="N",
                     help="trace one sensing epoch in N (deterministic "
                          "head sampling; default the shipped stride, "
                          "1 = trace every epoch)")

    scenarios = sub.add_parser(
        "scenarios", help="list the registered experiment scenarios")
    scenarios.add_argument("--show", metavar="NAME", default=None,
                           help="describe one scenario in full")

    sub.add_parser(
        "controllers",
        help="list the registered control stacks (ControlPolicy registry)")

    bakeoff = sub.add_parser(
        "bakeoff",
        help="head-to-head controller comparison: fan controller x "
             "scenario x seed through the pool and score comfort/"
             "energy/dew/network/SLO (see repro.workloads.bakeoff)")
    bakeoff.add_argument("--controllers", default="pid,consensus,deadband",
                         help="comma-separated control stacks to compare "
                              "(default: pid,consensus,deadband)")
    bakeoff.add_argument("--scenarios", default="paper-vc",
                         help="comma-separated base scenario cells; every "
                              "controller runs each cell (default: "
                              "paper-vc)")
    bakeoff.add_argument("--seeds", type=int, default=2,
                         help="number of replicate seeds per cell "
                              "(default: 2)")
    bakeoff.add_argument("--seed-base", type=int, default=7,
                         help="first seed of the range (default: 7)")
    bakeoff.add_argument("--minutes", type=float, default=30.0,
                         help="run length per cell (default: 30)")
    bakeoff.add_argument("--warmup-minutes", type=float, default=5.0,
                         help="cold-start transient excluded from scoring "
                              "(default: 5)")
    bakeoff.add_argument("--window-minutes", type=float, default=10.0,
                         help="rolling SLO window length (default: 10)")
    bakeoff.add_argument("--workers", type=int, default=None,
                         help="process-pool width (default: cpu count, "
                              "capped at the number of runs)")
    bakeoff.add_argument("--timeout-s", type=float, default=None,
                         help="per-run wall-clock timeout (workers > 1)")
    bakeoff.add_argument("--report", metavar="PATH",
                         help="write the rendered report here")
    bakeoff.add_argument("--json", metavar="PATH", dest="json_path",
                         help="write the machine-readable report here")

    cop = sub.add_parser("cop", help="steady-state COP report (Fig. 11)")
    cop.add_argument("--seed", type=int, default=7)

    lifetime = sub.add_parser(
        "lifetime", help="BT-ADPT vs Fixed battery life (Fig. 15)")
    lifetime.add_argument("--hours", type=float, default=2.0)
    lifetime.add_argument("--seed", type=int, default=7)

    bench = sub.add_parser(
        "bench", help="time the paper trials (see repro.bench)")
    bench.add_argument("--trial", choices=["hvac", "network", "all"],
                       default="all")
    bench.add_argument("--no-macro", action="store_true")
    bench.add_argument("--repeat", type=int, default=1,
                       help="best-of-N wall clock per trial")
    bench.add_argument("--workers", type=int, default=0,
                       help="also run the parallel fan-out section with "
                            "this many workers (0: skip)")
    bench.add_argument("--grid", metavar="ZONES", default=None,
                       help="also run the vector-core scaling section "
                            "over these comma-separated grid sizes "
                            "(e.g. 4,32,128)")
    bench.add_argument("--grid-seeds", type=int, default=16,
                       help="seed replicas in the grid section's "
                            "lockstep batch")
    bench.add_argument("--obs", action="store_true",
                       help="also measure observability overhead: rerun "
                            "the trials with telemetry on and assert "
                            "<3%% wall-clock cost and identical hashes")
    bench.add_argument("--telemetry", metavar="DIR", default=None,
                       help="write the instrumented trials' telemetry "
                            "artifacts here (implies --obs)")
    bench.add_argument("-o", "--output", default="BENCH_2.json")

    campaign = sub.add_parser(
        "campaign",
        help="fault-injection campaign scored against a clean baseline")
    campaign.add_argument("--quick", action="store_true",
                          help="the fast 10-cell matrix, 45 min per cell "
                               "(default: onset/severity sweep, 60 min)")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--minutes", type=float, default=None,
                          help="override the per-cell run length")
    campaign.add_argument("--warmup-minutes", type=float, default=None,
                          help="override the scoring warmup (must fit "
                               "inside the run length)")
    campaign.add_argument("--only", metavar="GLOB",
                          help="run only cells whose name matches this "
                               "shell-style pattern (e.g. 'stuck-*')")
    campaign.add_argument("--cells", metavar="NAMES",
                          help="run exactly these comma-separated cell "
                               "names, in the given order")
    campaign.add_argument("--controller", metavar="NAME", default="pid",
                          help="control stack for baseline and cells "
                               "(see `repro controllers`; default: pid)")
    campaign.add_argument("--workers", type=int, default=None,
                          help="process-pool width (default: cpu count, "
                               "capped at the number of runs)")
    campaign.add_argument("--timeout-s", type=float, default=None,
                          help="per-run wall-clock timeout (workers > 1)")
    campaign.add_argument("--report", metavar="PATH",
                          help="write the markdown report here")
    campaign.add_argument("--json", metavar="PATH", dest="json_path",
                          help="write the machine-readable report here")
    campaign.add_argument("--telemetry", metavar="DIR", default=None,
                          help="record per-run observability (events, "
                               "metrics, health, profile) into this "
                               "directory; runs stay bit-identical")
    campaign.add_argument("--trace", action="store_true",
                          help="also record per-run causal traces "
                               "(trace.jsonl; requires --telemetry)")

    sweep = sub.add_parser(
        "sweep",
        help="replicate a trial across seeds and aggregate the paper "
             "metrics (mean/stddev/min/max)")
    sweep.add_argument("--seeds", type=int, default=5,
                       help="number of replicate seeds (default: 5)")
    sweep.add_argument("--seed-base", type=int, default=1,
                       help="first seed of the range (default: 1)")
    sweep.add_argument("--minutes", type=float, default=105.0,
                       help="run length per replicate (default: the "
                            "paper's 105)")
    sweep.add_argument("--warmup-minutes", type=float, default=30.0,
                       help="cold-start transient excluded from comfort "
                            "scoring (default: 30)")
    sweep.add_argument("--paper-events", action="store_true",
                       help="schedule the paper's 14:05/14:25 door events")
    sweep.add_argument("--direct", action="store_true",
                       help="wired control loop (no radio)")
    sweep.add_argument("--fixed-tx", action="store_true",
                       help="Fixed transmission scheme instead of BT-ADPT")
    sweep.add_argument("--controller", metavar="NAME", default="pid",
                       help="control stack for every replicate (see "
                            "`repro controllers`; default: pid)")
    sweep.add_argument("--lockstep-batch", type=int, default=None,
                       metavar="R",
                       help="shard seeds into lockstep groups of R "
                            "replicas each (direct, scriptless sweeps "
                            "only; first seed of a group is the "
                            "bit-exact master lane, the rest are "
                            "replica-lane within the documented "
                            "lockstep tolerance); composes with "
                            "--workers, which then counts groups")
    sweep.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: cpu count, "
                            "capped at the number of replicates)")
    sweep.add_argument("--timeout-s", type=float, default=None,
                       help="per-run wall-clock timeout (workers > 1)")
    sweep.add_argument("--report", metavar="PATH",
                       help="write the markdown report here")
    sweep.add_argument("--json", metavar="PATH", dest="json_path",
                       help="write the machine-readable report here")
    sweep.add_argument("--telemetry", metavar="DIR", default=None,
                       help="record per-replicate observability into "
                            "this directory; runs stay bit-identical")
    sweep.add_argument("--trace", action="store_true",
                       help="also record per-replicate causal traces "
                            "(trace.jsonl; requires --telemetry)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded continuous-chaos endurance campaign with rolling "
             "SLO scoring (see repro.workloads.chaos)")
    chaos.add_argument("--scenario", default="chaos-paper",
                       help="registered chaos base scenario (default: "
                            "chaos-paper; chaos-grid-8/-32 scale out)")
    chaos.add_argument("--hours", type=float, default=48.0,
                       help="endurance horizon per run (default: 48)")
    chaos.add_argument("--seeds", type=int, default=1,
                       help="number of hazard seeds (default: 1)")
    chaos.add_argument("--seed-base", type=int, default=7,
                       help="first seed of the range (default: 7)")
    chaos.add_argument("--controllers", default="adaptive,fixed",
                       help="comma-separated controller variants to run "
                            "per seed (default: adaptive,fixed)")
    chaos.add_argument("--window-minutes", type=float, default=60.0,
                       help="rolling SLO window length (default: 60)")
    chaos.add_argument("--warmup-minutes", type=float, default=30.0,
                       help="cold-start transient excluded from scoring "
                            "(default: 30)")
    chaos.add_argument("--hazard", choices=["default", "quick"],
                       default="default",
                       help="base hazard profile: the endurance default "
                            "or the accelerated quick profile behind "
                            "the short CI smoke")
    chaos.add_argument("--rate-scale", type=float, default=1.0,
                       help="multiply every hazard rate (and accelerate "
                            "battery wear-out) by this factor")
    chaos.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: cpu count, "
                            "capped at the number of runs)")
    chaos.add_argument("--timeout-s", type=float, default=None,
                       help="per-run wall-clock timeout (workers > 1)")
    chaos.add_argument("--jsonl", metavar="PATH",
                       help="stream incremental SLO report rows here "
                            "(one JSON object per line)")
    chaos.add_argument("--json", metavar="PATH", dest="json_path",
                       help="write the full machine-readable report "
                            "here")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the markdown report here")
    chaos.add_argument("--telemetry", metavar="DIR", default=None,
                       help="record per-run observability artifacts "
                            "into this directory")
    chaos.add_argument("--trace", action="store_true",
                       help="also record per-run causal traces and "
                            "fold p95 data-age / fault-age-delta "
                            "columns into the SLO report")
    chaos.add_argument("--strict", action="store_true",
                       help="exit 1 when any run misses its SLO "
                            "budgets (execution failures always exit 1)")

    trace = sub.add_parser(
        "trace",
        help="inspect, export and diff recorded causal traces "
             "(see repro.obs.trace / repro.analysis.dataage)")
    trace.add_argument("--telemetry", metavar="DIR", required=True,
                       help="telemetry directory containing trace.jsonl")
    trace.add_argument("--run", metavar="LABEL", default=None,
                       help="run label to inspect (required when the "
                            "directory holds several traced runs)")
    trace.add_argument("--tree", type=int, metavar="TRACE_ID",
                       default=None,
                       help="render this trace's span tree (default: "
                            "the first completed trace)")
    trace.add_argument("--export-chrome", metavar="PATH", default=None,
                       help="write a Chrome trace_event JSON (open in "
                            "chrome://tracing or ui.perfetto.dev)")
    trace.add_argument("--save-summary", metavar="PATH", default=None,
                       help="write the data-age summary JSON here "
                            "(the --diff baseline format)")
    trace.add_argument("--diff", metavar="BASELINE", default=None,
                       help="compare against a saved summary; exits 1 "
                            "on a data-age/drop regression")
    trace.add_argument("--tolerance-pct", type=float, default=10.0,
                       help="relative p95/p99 growth tolerated by "
                            "--diff (default: 10)")

    status = sub.add_parser(
        "status",
        help="render the health/telemetry view of a recorded run")
    status.add_argument("--telemetry", metavar="DIR", required=True,
                        help="telemetry directory written by campaign/"
                             "sweep/bench --telemetry")
    status.add_argument("--validate", action="store_true",
                        help="also validate every artifact against the "
                             "event and manifest schemas (exit 1 on any "
                             "problem)")
    return parser


def _run_scenario_spec(args: argparse.Namespace) -> ScenarioSpec:
    """The spec behind ``repro run``: a registered scenario (when
    ``--scenario`` names one) with the explicit flags layered on top,
    or the classic hand-flagged run."""
    from repro.scenarios.registry import get_scenario

    if args.scenario:
        spec = get_scenario(args.scenario)
    else:
        spec = ScenarioSpec(name="run", config=BubbleZeroConfig(seed=7),
                            run_minutes=105.0)
    overrides = {}
    config = spec.config
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    if args.direct or args.fixed_tx:
        config = dataclasses.replace(config, network=NetworkConfig(
            enabled=not args.direct,
            bt_mode="fixed" if args.fixed_tx else "adaptive"))
    if config is not spec.config:
        overrides["config"] = config
    script = args.script
    if args.paper_events and script is None:
        script = "paper-phase-two"
    if script is not None:
        overrides["script"] = script
    if args.weather is not None:
        overrides["weather"] = args.weather
    if args.minutes is not None:
        overrides["run_minutes"] = args.minutes
    if args.controller is not None:
        overrides["controller"] = args.controller
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def cmd_run(args: argparse.Namespace) -> int:
    if args.trace and not args.telemetry:
        print("--trace requires --telemetry (the spans are written as "
              "trace.jsonl inside the telemetry directory)",
              file=sys.stderr)
        return 2
    if args.trace_sample is not None and not args.trace:
        print("--trace-sample only makes sense with --trace",
              file=sys.stderr)
        return 2
    if args.trace_sample is not None and args.trace_sample < 1:
        print("--trace-sample must be >= 1", file=sys.stderr)
        return 2
    try:
        spec = _run_scenario_spec(args)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    obs = None
    if args.telemetry:
        from repro.obs import create_observability
        obs = create_observability(trace=args.trace,
                                   trace_sample=args.trace_sample)
    system, _ = prepare_run(spec, obs=obs)
    system.start()
    remaining = spec.run_minutes
    print(f"{'time':>8} {'temp':>7} {'dew':>7} {'co2':>6}")
    while remaining > 0:
        step = min(10.0, remaining)
        system.run(minutes=step)
        remaining -= step
        room = system.plant.room
        print(f"{format_clock(system.sim.now):>8} "
              f"{room.mean_temp_c():7.2f} {room.mean_dew_point_c():7.2f} "
              f"{room.mean_co2_ppm():6.0f}")
    system.finalize()
    print(f"condensation events: {system.plant.room.condensation_events}")
    if system.medium is not None:
        stats = system.network_stats()
        print(f"frames: {stats['transmissions']:.0f}, collision rate "
              f"{stats['collision_rate'] * 100:.2f}%")
    if args.export_csv:
        rows = export_traces_csv(system.sim.trace, args.export_csv)
        print(f"wrote {rows} rows to {args.export_csv}")
    if args.export_json:
        export_summary_json(system, args.export_json)
        print(f"wrote summary to {args.export_json}")
    if obs is not None:
        from repro.obs.collect import obs_payload
        from repro.obs.manifest import build_manifest
        from repro.obs.status import write_system_telemetry
        manifest = build_manifest(
            command="run",
            config_dict={"scenario": spec.name,
                         "run_minutes": spec.run_minutes,
                         "controller": spec.controller,
                         "trace": args.trace,
                         "trace_sample": obs.trace.sample_every
                         if args.trace else None},
            seed=spec.config.seed,
            extra={"controller": spec.controller})
        write_system_telemetry(args.telemetry, manifest, spec.name,
                               obs_payload(system, obs))
        print(f"wrote telemetry to {args.telemetry}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import (
        describe_scenario,
        get_scenario,
        scenario_names,
    )

    if args.show:
        try:
            print(describe_scenario(args.show))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0
    for name in scenario_names():
        print(f"{name:36} {get_scenario(name).description}")
    return 0


def cmd_controllers(args: argparse.Namespace) -> int:
    from repro.control.policy import controller_names, describe_controller

    for name in controller_names():
        print(describe_controller(name))
    return 0


def cmd_bakeoff(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.pool import default_worker_count
    from repro.workloads.bakeoff import (
        BakeoffConfig,
        bakeoff_specs,
        run_bakeoff,
    )

    controllers = tuple(name.strip()
                        for name in args.controllers.split(",")
                        if name.strip())
    scenarios = tuple(name.strip() for name in args.scenarios.split(",")
                      if name.strip())
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    try:
        config = BakeoffConfig(controllers=controllers,
                               scenarios=scenarios, seeds=seeds,
                               minutes=args.minutes,
                               warmup_minutes=args.warmup_minutes,
                               window_minutes=args.window_minutes)
        # Resolve every cell up front so a scenario typo fails before
        # any run starts.
        specs = bakeoff_specs(config)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    workers = (default_worker_count(len(specs)) if args.workers is None
               else args.workers)
    print(f"{len(specs)} run(s): {len(controllers)} controller(s) x "
          f"{len(scenarios)} cell(s) x {len(seeds)} seed(s), "
          f"{workers} worker(s)")
    result = run_bakeoff(config,
                         progress=lambda m: print(f"  {m}", flush=True),
                         workers=workers, timeout_s=args.timeout_s)
    report = result.render()
    print()
    print(report)
    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"wrote report to {args.report}")
    if args.json_path:
        out = Path(args.json_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(result.report_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote JSON to {args.json_path}")
    if result.failures:
        names = ", ".join(f.label for f in result.failures)
        print(f"runs that failed to execute: {names}")
        return 1
    return 0


def cmd_cop(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_cop_bars
    from repro.baselines.aircon import AirConBaseline
    from repro.core.plant import CONDENSER_APPROACH_K
    from repro.scenarios.registry import get_scenario

    spec = get_scenario("paper-cop")
    if args.seed != spec.config.seed:
        spec = dataclasses.replace(spec, config=dataclasses.replace(
            spec.config, seed=args.seed))
    # The registered 60-minute horizon is the 40-minute pulldown plus
    # the 20-minute metered window below.
    system, _ = prepare_run(spec)
    system.run(minutes=40)
    before = system.plant.meter_snapshot()
    system.run(minutes=20)
    after = system.plant.meter_snapshot()
    report = system.plant.cop_between(before, after)
    reject = system.config.outdoor.temp_c + CONDENSER_APPROACH_K
    heat = ((after["radiant_heat_j"] - before["radiant_heat_j"])
            + (after["vent_heat_j"] - before["vent_heat_j"]))
    aircon = AirConBaseline().serve(heat, after["time_s"] - before["time_s"],
                                    reject)
    print(render_cop_bars({
        "AirCon": aircon.cop,
        "Bubble-C": report["bubble_c"],
        "Bubble-V": report["bubble_v"],
        "BubbleZERO": report["bubble_zero"],
    }))
    gain = (report["bubble_zero"] - aircon.cop) / aircon.cop * 100.0
    print(f"improvement over AirCon: {gain:.1f}% (paper: up to 45.5%)")
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.scenarios.registry import get_scenario

    results = {}
    for mode in ("fixed", "adaptive"):
        spec = get_scenario(f"lifetime-{mode}")
        overrides = {"run_minutes": args.hours * 60.0}
        if args.seed != spec.config.seed:
            overrides["config"] = dataclasses.replace(
                spec.config, seed=args.seed)
        spec = dataclasses.replace(spec, **overrides)
        system, _ = prepare_run(spec)
        system.start()
        system.run(hours=args.hours)
        system.finalize()
        elapsed = args.hours * 3600.0
        results[mode] = float(np.mean([
            node.projected_lifetime_years(elapsed)
            for node in system.bt_nodes]))
        print(f"{mode:>9}: mean projected battery life "
              f"{results[mode]:.2f} years")
    print(f"gain: {results['adaptive'] / results['fixed']:.1f}x "
          f"(paper: ~4.6x)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.export import export_campaign_json
    from repro.analysis.reporting import render_campaign_report
    from repro.runtime.pool import default_worker_count
    from repro.workloads.campaign import (
        CampaignExecutionError,
        filter_cells,
        full_campaign_config,
        quick_campaign_config,
        run_campaign,
    )

    if args.trace and not args.telemetry:
        print("--trace requires --telemetry", file=sys.stderr)
        return 2
    config = (quick_campaign_config(seed=args.seed) if args.quick
              else full_campaign_config(seed=args.seed))
    overrides = {}
    if args.minutes is not None:
        overrides["run_minutes"] = args.minutes
    if args.warmup_minutes is not None:
        overrides["warmup_minutes"] = args.warmup_minutes
    if args.controller != "pid":
        overrides["controller"] = args.controller
    if overrides:
        # replace() re-runs CampaignConfig validation, so a warmup that
        # no longer fits the shortened run fails here, not mid-campaign.
        try:
            config = dataclasses.replace(config, **overrides)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    if args.only:
        try:
            config.cells = filter_cells(config.cells, args.only)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    if args.cells:
        wanted = [name.strip() for name in args.cells.split(",")
                  if name.strip()]
        by_name = {cell.name: cell for cell in config.cells}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            print(f"unknown campaign cell(s): {', '.join(unknown)}; "
                  f"available: {', '.join(by_name)}", file=sys.stderr)
            return 2
        config.cells = [by_name[name] for name in wanted]
    workers = (default_worker_count(len(config.cells) + 1)
               if args.workers is None else args.workers)
    print(f"{len(config.cells)} cells + baseline, {workers} worker(s)")
    try:
        result = run_campaign(
            config, progress=lambda m: print(f"  {m}", flush=True),
            workers=workers, timeout_s=args.timeout_s,
            telemetry_dir=args.telemetry, trace=args.trace)
    except CampaignExecutionError as exc:
        print(f"campaign aborted: {exc}", file=sys.stderr)
        return 1
    report = render_campaign_report(result)
    print()
    print(report)
    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"wrote report to {args.report}")
    if args.json_path:
        export_campaign_json(result, args.json_path)
        print(f"wrote JSON to {args.json_path}")
    status = 0
    if result.failures:
        names = ", ".join(f.label for f in result.failures)
        print(f"runs that failed to execute: {names}")
        status = 1
    failed = [cell.cell.name for cell in result.cells
              if cell.graceful is False]
    if failed:
        print(f"single-crash cells exceeding the graceful bound: "
              f"{', '.join(failed)}")
        status = 1
    return status


def cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.export import export_sweep_json
    from repro.analysis.reporting import render_sweep_report
    from repro.runtime.pool import default_worker_count
    from repro.runtime.progress import ProgressPrinter
    from repro.workloads.sweep import SweepConfig, run_sweep

    if args.trace and not args.telemetry:
        print("--trace requires --telemetry", file=sys.stderr)
        return 2
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    try:
        config = SweepConfig(seeds=seeds, run_minutes=args.minutes,
                             warmup_minutes=args.warmup_minutes,
                             script=("paper-phase-two" if args.paper_events
                                     else "none"),
                             direct=args.direct, fixed_tx=args.fixed_tx,
                             controller=args.controller,
                             lockstep_batch=args.lockstep_batch)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    from repro.workloads.sweep import _expected_payloads
    jobs = _expected_payloads(config)
    workers = (default_worker_count(jobs) if args.workers is None
               else args.workers)
    if config.lockstep_batch is None:
        print(f"{len(seeds)} replicates (seeds {seeds[0]}..{seeds[-1]}), "
              f"{config.run_minutes:g} min each, {workers} worker(s)")
    else:
        print(f"{len(seeds)} replicates (seeds {seeds[0]}..{seeds[-1]}) "
              f"in {jobs} lockstep group(s) of up to "
              f"{config.lockstep_batch}, {config.run_minutes:g} min each, "
              f"{workers} worker(s)")
    result = run_sweep(config, workers=workers, timeout_s=args.timeout_s,
                       progress=ProgressPrinter(jobs),
                       telemetry_dir=args.telemetry, trace=args.trace)
    report = render_sweep_report(result)
    print()
    print(report)
    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"wrote report to {args.report}")
    if args.json_path:
        export_sweep_json(result, args.json_path)
        print(f"wrote JSON to {args.json_path}")
    if result.failures:
        names = ", ".join(f.label for f in result.failures)
        print(f"replicates that failed to execute: {names}")
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.reporting import render_chaos_report
    from repro.runtime.pool import default_worker_count
    from repro.workloads.chaos import (
        ChaosConfig,
        HazardConfig,
        quick_hazard,
        run_chaos,
    )

    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    controllers = tuple(name.strip()
                        for name in args.controllers.split(",")
                        if name.strip())
    try:
        hazard = (quick_hazard() if args.hazard == "quick"
                  else HazardConfig())
        if args.rate_scale != 1.0:
            hazard = hazard.scaled(args.rate_scale)
        config = ChaosConfig(scenario=args.scenario, hours=args.hours,
                             seeds=seeds, controllers=controllers,
                             window_minutes=args.window_minutes,
                             warmup_minutes=args.warmup_minutes,
                             hazard=hazard, trace=args.trace)
        # Resolve the scenario (and its network mode) before any run
        # starts, so a typo or a direct-mode base fails immediately.
        from repro.workloads.chaos import chaos_specs
        chaos_specs(config)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    runs = len(seeds) * len(controllers)
    workers = (default_worker_count(runs) if args.workers is None
               else args.workers)
    print(f"{runs} endurance run(s) ({args.hours:g} h each, scenario "
          f"{config.scenario}), {workers} worker(s)")
    result = run_chaos(config,
                       progress=lambda m: print(f"  {m}", flush=True),
                       workers=workers, timeout_s=args.timeout_s,
                       jsonl_path=args.jsonl,
                       telemetry_dir=args.telemetry)
    report = render_chaos_report(result)
    print()
    print(report)
    if args.jsonl:
        print(f"streamed SLO rows to {args.jsonl}")
    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"wrote report to {args.report}")
    if args.json_path:
        out = Path(args.json_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(result.report_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote JSON to {args.json_path}")
    if result.failures:
        names = ", ".join(f.label for f in result.failures)
        print(f"runs that failed to execute: {names}")
        return 1
    breached = [run.label for run in result.runs
                if not run.report.passed]
    if breached:
        print(f"runs missing their SLO budgets: {', '.join(breached)}")
        if args.strict:
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import main as bench_main

    forwarded = ["--trial", args.trial, "--output", args.output,
                 "--repeat", str(args.repeat),
                 "--workers", str(args.workers)]
    if args.no_macro:
        forwarded.append("--no-macro")
    if args.grid:
        forwarded.extend(["--grid", args.grid,
                          "--grid-seeds", str(args.grid_seeds)])
    if args.obs:
        forwarded.append("--obs")
    if args.telemetry:
        forwarded.extend(["--telemetry", args.telemetry])
    return bench_main(forwarded)


def cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.dataage import diff_summaries, summarize_dataage
    from repro.analysis.reporting import render_table
    from repro.obs import trace as tr
    from repro.obs.status import load_telemetry

    records = load_telemetry(args.telemetry).get("trace") or []
    if not records:
        print(f"no trace.jsonl in {args.telemetry}; rerun the producing "
              "command with --trace", file=sys.stderr)
        return 2
    runs = sorted({str(r.get("run")) for r in records})
    run = args.run
    if run is None:
        if len(runs) > 1:
            print("directory holds several traced runs; pick one with "
                  f"--run: {', '.join(runs)}", file=sys.stderr)
            return 2
        run = runs[0]
    elif run not in runs:
        print(f"no traced run {run!r}; available: {', '.join(runs)}",
              file=sys.stderr)
        return 2
    selected = [r for r in records if str(r.get("run")) == run]
    spans = tr.span_records(selected)
    summary = summarize_dataage(selected)

    print(f"run {run}: {summary['traces']} trace(s), "
          f"{len(spans)} span(s)")
    statuses = summary["statuses"]
    if statuses:
        print("  " + ", ".join(f"{name}: {count}"
                               for name, count in statuses.items()))
    rows = []
    for scope, stats in (
            [("sensing→actuation age", summary["ages"]["overall"])]
            + [(f"age · zone {zone}", zone_stats)
               for zone, zone_stats in summary["ages"]["zones"].items()]
            + [("MAC access", summary["hops"]["mac"]),
               ("airtime", summary["hops"]["air"])]):
        if stats is None:
            continue
        rows.append((scope, int(stats["n"]), f"{stats['p50_s']:.4f}",
                     f"{stats['p95_s']:.4f}", f"{stats['p99_s']:.4f}",
                     f"{stats['max_s']:.4f}"))
    if rows:
        print()
        print(render_table("Latency breakdown (seconds)",
                           ["population", "n", "p50", "p95", "p99",
                            "max"], rows))
    attribution = summary["attribution"]
    print()
    print(render_table(
        "Loss & retry attribution", ["counter", "count"],
        sorted(attribution.items())))

    trace_id = args.tree
    if trace_id is None and spans:
        trace_id = min(int(span["trace"]) for span in spans)
    if trace_id is not None:
        print()
        print(tr.render_span_tree(spans, trace_id), end="")

    if args.export_chrome:
        out = Path(args.export_chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(tr.chrome_trace(spans), handle, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote Chrome trace to {out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.save_summary:
        out = Path(args.save_summary)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True,
                      default=float)
            handle.write("\n")
        print(f"wrote data-age summary to {out}")
    if args.diff:
        try:
            with open(args.diff, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.diff}: {exc}",
                  file=sys.stderr)
            return 2
        diff = diff_summaries(baseline, summary,
                              tolerance_pct=args.tolerance_pct)
        print()
        print(render_table(
            f"Diff vs {args.diff} (tolerance {args.tolerance_pct:g}%)",
            ["metric", "baseline", "candidate", "delta"],
            [(row["metric"], row["baseline"], row["candidate"],
              row["delta"]) for row in diff["rows"]]))
        if not diff["ok"]:
            print(f"\n{len(diff['regressions'])} regression(s):",
                  file=sys.stderr)
            for regression in diff["regressions"]:
                print(f"  {regression}", file=sys.stderr)
            return 1
        print("\nno data-age regressions")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.status import (
        load_telemetry,
        render_status,
        validate_telemetry,
    )

    telemetry = load_telemetry(args.telemetry)
    print(render_status(telemetry))
    if args.validate:
        problems = validate_telemetry(args.telemetry)
        if problems:
            print(f"{len(problems)} validation problem(s):",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("telemetry valid: every artifact matches its schema")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"run": cmd_run, "scenarios": cmd_scenarios,
                "controllers": cmd_controllers, "bakeoff": cmd_bakeoff,
                "cop": cmd_cop, "lifetime": cmd_lifetime,
                "bench": cmd_bench, "campaign": cmd_campaign,
                "sweep": cmd_sweep, "chaos": cmd_chaos,
                "trace": cmd_trace, "status": cmd_status}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
