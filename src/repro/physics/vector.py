"""Structure-of-arrays vectorized physics core.

The scalar plant walks one Python object per zone through every physics
tick: each radiant loop re-reads pump curves, re-derives exchanger
effectiveness and re-boxes dataclasses, and each airbox re-resolves a
dozen attribute chains — per tick, per zone.  For the paper's 4-zone lab
that overhead is tolerable; for the many-zone buildings the related work
evaluates on (and ``grid_topology(n)`` now declares in one line) it is
the scaling wall.

This module keeps the *numbers* of the scalar path and restructures the
*storage and the loop*:

* :class:`ZoneStateArrays` holds every zone's temperature, humidity
  ratio and CO2 concentration as ``float64[n]`` numpy arrays — one
  structure of arrays instead of n ``SubspaceState`` boxes.
* :func:`attach_soa` rewires a :class:`~repro.physics.room.Room` onto
  that storage.  Device-facing reads stay scalar: each subspace becomes
  a :class:`VectorSubspace` whose ``state`` is a live
  :class:`ZoneStateView` over its row, so sensors, boards and the
  recorder read exactly the values they always did, and RNG draw order
  is untouched.
* :class:`VectorPlantKernel` advances the whole plant over one
  event-free gap in a single fused call: every gap-invariant quantity
  (pump flows, exchanger effectiveness, fan power, coil constants, tank
  thermal masses, chiller COP at the frozen reject temperature) is
  hoisted once per gap, and the per-tick loop runs on plain local
  floats.  Macro gaps then delegate the room advance to the
  closed-form eigensolve the scalar path already uses
  (:meth:`Room.macro_step`), so clamp-binding regimes fall back to
  per-tick integration *exactly* as the reference does.
* :class:`BatchGapSolver` stacks the macro gaps of many same-topology
  rooms into one ``[batch, 3, n, n]`` eigensolve for sweep/bench
  workloads that replicate a scenario across seeds.

Bit-exactness contract: every floating-point expression below repeats
the grouping of the scalar component it replaces (``plant.py``,
``room.py``, ``tank.py``, ``coil.py``, ``panel.py``, ...), accumulators
keep their per-tick add order, and hoisted subexpressions are exactly
the loop-invariant factors of the original expressions.  The scalar
path remains the reference oracle; ``tests/test_vector_equivalence.py``
pins the two together bit for bit.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.airside.airbox import AirboxOutput
from repro.hydronics.panel import PanelResult
from repro.hydronics.water import WATER_CP, mass_flow
from repro.physics import spectral
from repro.physics.psychrometrics import (
    dew_point_from_humidity_ratio,
    humidity_ratio_from_dew_point,
    moist_air_enthalpy,
    relative_humidity_from_ratio,
)
from repro.physics.room import (
    AIR_CP,
    AIR_DENSITY,
    OCCUPANT_CO2_M3S,
    OCCUPANT_LATENT_KGS,
    OCCUPANT_SENSIBLE_W,
    Room,
    Subspace,
    SubspaceInputs,
    SubspaceState,
)
from repro.physics.weather import OutdoorState

# plant.py imports this module only lazily (inside ``Plant.__init__``),
# so pulling its constant here cannot cycle.
from repro.core.plant import CONDENSER_APPROACH_K


class ZoneStateArrays:
    """All zones' air state as three ``float64[n]`` arrays."""

    __slots__ = ("temp_c", "humidity_ratio", "co2_ppm")

    def __init__(self, temp_c: Sequence[float],
                 humidity_ratio: Sequence[float],
                 co2_ppm: Sequence[float]) -> None:
        self.temp_c = np.asarray(temp_c, dtype=np.float64)
        self.humidity_ratio = np.asarray(humidity_ratio, dtype=np.float64)
        self.co2_ppm = np.asarray(co2_ppm, dtype=np.float64)
        if not (self.temp_c.shape == self.humidity_ratio.shape
                == self.co2_ppm.shape) or self.temp_c.ndim != 1:
            raise ValueError("zone state arrays must be equal-length 1-D")

    def __len__(self) -> int:
        return len(self.temp_c)


class ZoneStateView:
    """Live scalar view of one zone's row of a :class:`ZoneStateArrays`.

    Duck-types :class:`~repro.physics.room.SubspaceState`: sensors and
    controllers read ``temp_c`` / ``humidity_ratio`` / ``co2_ppm`` /
    ``dew_point_c`` / ``relative_humidity()`` and always see the current
    array contents.
    """

    __slots__ = ("_arrays", "_index")

    def __init__(self, arrays: ZoneStateArrays, index: int) -> None:
        self._arrays = arrays
        self._index = index

    @property
    def temp_c(self) -> float:
        return float(self._arrays.temp_c[self._index])

    @property
    def humidity_ratio(self) -> float:
        return float(self._arrays.humidity_ratio[self._index])

    @property
    def co2_ppm(self) -> float:
        return float(self._arrays.co2_ppm[self._index])

    @property
    def dew_point_c(self) -> float:
        return dew_point_from_humidity_ratio(self.humidity_ratio)

    def relative_humidity(self) -> float:
        return relative_humidity_from_ratio(self.temp_c, self.humidity_ratio)

    def __repr__(self) -> str:
        return (f"ZoneStateView(temp_c={self.temp_c!r}, "
                f"humidity_ratio={self.humidity_ratio!r}, "
                f"co2_ppm={self.co2_ppm!r})")


class VectorSubspace(Subspace):
    """A :class:`Subspace` whose state lives in shared SoA storage.

    ``state`` reads return the live view; ``state`` writes (the pattern
    the scalar integrators and tests use: ``s.state = SubspaceState(...)``)
    store the three scalars into the arrays.
    """

    def __init__(self, index: int, volume_m3: float,
                 arrays: ZoneStateArrays) -> None:
        self.index = index
        self.volume_m3 = volume_m3
        self._arrays = arrays
        self._view = ZoneStateView(arrays, index)

    @property
    def state(self) -> ZoneStateView:
        return self._view

    @state.setter
    def state(self, value) -> None:
        i = self.index
        self._arrays.temp_c[i] = value.temp_c
        self._arrays.humidity_ratio[i] = value.humidity_ratio
        self._arrays.co2_ppm[i] = value.co2_ppm


def attach_soa(room: Room) -> ZoneStateArrays:
    """Rewire ``room`` onto structure-of-arrays state storage.

    Idempotent: a room already attached keeps its arrays.  The scalar
    integrators (:meth:`Room.step`, :meth:`Room.macro_step`) keep
    working unchanged — they read per-zone views and write through the
    ``state`` setter — so the fallback paths stay bit-identical.
    """
    if room.subspaces and isinstance(room.subspaces[0], VectorSubspace):
        return room.subspaces[0]._arrays
    arrays = ZoneStateArrays(
        [s.state.temp_c for s in room.subspaces],
        [s.state.humidity_ratio for s in room.subspaces],
        [s.state.co2_ppm for s in room.subspaces])
    room.subspaces = [VectorSubspace(s.index, s.volume_m3, arrays)
                      for s in room.subspaces]
    return arrays


def _tank_tick(st: list, dt: float, ambient: float, ua: float, mass: float,
               hi: float, lo: float, cap: float, par: float,
               cop: float) -> None:
    """One :meth:`ColdWaterTank.step` on unboxed state.

    ``st`` is ``[temp_c, energy_in_j, heat_returned_j, ambient_gain_j,
    chilling, chiller_energy_j, chiller_heat_moved_j]``.  Repeats the
    tank/chiller expressions verbatim; ``cop`` is the chiller's
    ``cop_at(reject)``, constant across a gap because the reject
    temperature is.
    """
    temp = st[0]
    gain_w = ua * (ambient - temp)
    g_dt = gain_w * dt
    temp += g_dt / mass
    st[3] += g_dt
    chilling = st[4]
    if temp > hi:
        chilling = True
    elif temp < lo:
        chilling = False
    if chilling:
        load_w = cap
        excess_k = temp - lo
        max_removable = excess_k * mass / dt if dt else 0.0
        load_w = min(load_w, max(0.0, max_removable))
        clamped = min(load_w, cap)
        if clamped == 0:
            st[5] += par * dt
        else:
            st[5] += (par + clamped / cop) * dt
        st[6] += clamped * dt
        temp -= load_w * dt / mass
    else:
        st[5] += par * dt
    st[0] = temp
    st[4] = chilling


class VectorPlantKernel:
    """Fused gap integrator for one :class:`~repro.core.plant.Plant`.

    Owns the plant's zone state as SoA arrays and advances hydronics,
    airside, tanks and room over a whole event-free gap in one call.
    Constructed by ``Plant(..., vector=True)``; the plant then delegates
    :meth:`step` / :meth:`macro_step` here.
    """

    def __init__(self, plant) -> None:
        self.plant = plant
        self.arrays = attach_soa(plant.room)
        self._n = len(plant.room.subspaces)
        self._ctx_built = False

    # ------------------------------------------------------------------
    def _build_ctx(self) -> None:
        """Build the persistent gap context.

        Component *constants* (coil geometry, tank masses, panel UA,
        flap travel times) are read once; *control inputs* (pump
        voltages, fan speed steps) get value caches so their derived
        quantities — pump curves, exchanger effectiveness, fan tables —
        are recomputed only on actual actuation changes rather than
        every gap.  Accumulators and actuator targets are still re-read
        from the owning objects at every gap, so anything the scalar
        component model mutates between gaps stays authoritative.
        """
        plant = self.plant
        n = self._n
        loops = list(plant.panel_loops)
        units = list(plant.vent_units)
        n_panels = len(loops)
        topo = plant.topology
        self._loops = loops
        self._units = units
        self._n_panels = n_panels
        self._p_served = [topo.panel_zones[p] for p in range(n_panels)]
        self._p_ua = [loop.panel.ua_w_per_k for loop in loops]
        self._p_film = [loop.panel.surface_film_fraction for loop in loops]
        self._door_weights = topo.door_weights
        self._window_weights = topo.window_weights
        # Pump-voltage caches (None forces the first-gap computation).
        self._cv_sup = [None] * n_panels
        self._cv_rcy = [None] * n_panels
        self._p_fsupp = [0.0] * n_panels
        self._p_frcyc = [0.0] * n_panels
        self._p_total = [0.0] * n_panels
        self._p_mcp = [0.0] * n_panels
        self._p_emcp = [0.0] * n_panels
        self._p_eff = [0.0] * n_panels
        self._p_mf_supp = [0.0] * n_panels
        self._p_sup_pw = [0.0] * n_panels
        self._p_rcy_pw = [0.0] * n_panels
        # Per-tick scratch, persistent across gaps (overwritten fully).
        self._p_zt = [0.0] * n_panels
        self._p_dew = [0.0] * n_panels
        self._p_mwc = [0.0] * n_panels
        self._p_rt = [0.0] * n_panels
        self._p_heat_abs = [0.0] * n_panels
        self._p_sup_e = [0.0] * n_panels
        self._p_rcy_e = [0.0] * n_panels
        self._p_sup_pd = [0.0] * n_panels
        self._p_rcy_pd = [0.0] * n_panels
        self._p_last_heat = [0.0] * n_panels
        self._p_last_ret = [0.0] * n_panels
        self._p_last_surf = [0.0] * n_panels
        self._p_last_mixt = [0.0] * n_panels
        # Vent units: constants and actuation caches.
        self._cu_fan = [None] * n
        self._cu_pumpv = [None] * n
        self._u_fanflow = [0.0] * n
        self._u_fan_pw = [0.0] * n
        self._u_pump_pw = [0.0] * n
        self._u_flow = [0.0] * n
        self._u_mass_air = [0.0] * n
        self._u_reheat = [False] * n
        self._u_pumpflow = [0.0] * n
        self._u_alpha = [0.0] * n
        self._u_eff = [0.0] * n
        self._u_maxwf = [u.airbox.coil.max_water_flow_lps for u in units]
        self._u_drop = [u.airbox.coil.dew_drop_per_lps for u in units]
        self._u_appr = [u.airbox.coil.approach_k for u in units]
        self._u_bf1 = [1.0 - u.airbox.coil.bypass_factor for u in units]
        self._u_reheat_k = [u.airbox.SUPPLY_REHEAT_K for u in units]
        self._u_motor_pw = [u.flap.motor_power_w for u in units]
        self._u_travel = [u.flap.travel_time_s for u in units]
        self._u_heat_e = [0.0] * n
        self._u_fan_e = [0.0] * n
        self._u_fan_pd = [0.0] * n
        self._u_pump_e = [0.0] * n
        self._u_pump_pd = [0.0] * n
        self._u_flap_pos = [0.0] * n
        self._u_flap_tgt = [0.0] * n
        self._u_flap_rate = [0.0] * n
        self._u_flap_pd = [0.0] * n
        self._u_flap_e = [0.0] * n
        self._u_supt = [0.0] * n
        self._u_supw = [0.0] * n
        self._u_eflow = [0.0] * n
        self._u_last_dew = [0.0] * n
        self._u_last_heat = [0.0] * n
        self._u_last_waterT = [0.0] * n
        # Tanks and chillers: thermal constants plus a COP cache keyed
        # on the (weather-driven) reject temperature.
        rtank = plant.radiant_tank
        vtank = plant.vent_tank
        self._r_mass = rtank.thermal_mass_j_per_k
        self._v_mass = vtank.thermal_mass_j_per_k
        self._r_ua = rtank.ambient_ua_w_per_k
        self._v_ua = vtank.ambient_ua_w_per_k
        self._r_hi = rtank.setpoint_c + rtank.deadband_k
        self._r_lo = rtank.setpoint_c - rtank.deadband_k
        self._v_hi = vtank.setpoint_c + vtank.deadband_k
        self._v_lo = vtank.setpoint_c - vtank.deadband_k
        self._r_cap = rtank.chiller.capacity_w
        self._v_cap = vtank.chiller.capacity_w
        self._r_par = rtank.chiller.parasitic_w
        self._v_par = vtank.chiller.parasitic_w
        self._cop_key = None
        self._r_cop = 0.0
        self._v_cop = 0.0
        self._ctx_built = True

    # ------------------------------------------------------------------
    def step(self, now: float, dt: float) -> None:
        """Fused equivalent of :meth:`Plant.step` (one unit tick)."""
        self._run_gap(now, 1, dt, macro=False)

    def macro_step(self, now: float, ticks: int, dt: float) -> None:
        """Fused equivalent of :meth:`Plant.macro_step`."""
        self._run_gap(now, ticks, dt, macro=True)

    # ------------------------------------------------------------------
    def _run_gap(self, now: float, ticks: int, dt: float,
                 macro: bool) -> None:
        plant = self.plant
        room = plant.room
        arrays = self.arrays
        n = self._n

        outdoor = plant.weather.state_at(now)
        out_t = outdoor.temp_c
        out_w = outdoor.humidity_ratio
        out_co2 = outdoor.co2_ppm
        reject = out_t + CONDENSER_APPROACH_K

        # Zone state, frozen for the whole gap (the scalar paths update
        # the room only once per gap too).
        temps = arrays.temp_c.tolist()
        ws = arrays.humidity_ratio.tolist()
        co2s = arrays.co2_ppm.tolist()

        if macro:
            # mean_temp_c(): int-0 seeded sequential sum, like sum().
            acc = 0
            for t in temps:
                acc = acc + t
            ambient = acc / n

        if not self._ctx_built:
            self._build_ctx()

        # --- tank / chiller gap context --------------------------------
        rtank = plant.radiant_tank
        vtank = plant.vent_tank
        rchiller = rtank.chiller
        vchiller = vtank.chiller
        r_mass = self._r_mass
        v_mass = self._v_mass
        r_st = [rtank.temp_c, rtank.energy_in_j, rtank.heat_returned_j,
                rtank.ambient_gain_j, rtank._chilling,
                rchiller.energy_j, rchiller.heat_moved_j]
        v_st = [vtank.temp_c, vtank.energy_in_j, vtank.heat_returned_j,
                vtank.ambient_gain_j, vtank._chilling,
                vchiller.energy_j, vchiller.heat_moved_j]
        r_ua = self._r_ua
        v_ua = self._v_ua
        r_hi = self._r_hi
        r_lo = self._r_lo
        v_hi = self._v_hi
        v_lo = self._v_lo
        r_cap = self._r_cap
        v_cap = self._v_cap
        r_par = self._r_par
        v_par = self._v_par
        if reject != self._cop_key:
            self._cop_key = reject
            self._r_cop = rchiller.cop_at(reject)
            self._v_cop = vchiller.cop_at(reject)
        r_cop = self._r_cop
        v_cop = self._v_cop

        # --- condensation guard gap context ----------------------------
        guard = plant.guard
        g_margin = guard.margin_k
        g_worst = guard.worst_margin_k
        g_viol = guard.violations
        cond_events = room.condensation_events

        # --- radiant loop gap context ----------------------------------
        loops = self._loops
        n_panels = self._n_panels
        p_served = self._p_served
        p_zt = self._p_zt
        p_fsupp = self._p_fsupp
        p_frcyc = self._p_frcyc
        p_total = self._p_total
        p_mcp = self._p_mcp
        p_emcp = self._p_emcp
        p_eff = self._p_eff
        p_film = self._p_film
        p_dew = self._p_dew
        p_mwc = self._p_mwc
        p_rt = self._p_rt
        p_heat_abs = self._p_heat_abs
        p_sup_e = self._p_sup_e
        p_rcy_e = self._p_rcy_e
        p_sup_pd = self._p_sup_pd
        p_rcy_pd = self._p_rcy_pd
        p_last_heat = self._p_last_heat
        p_last_ret = self._p_last_ret
        p_last_surf = self._p_last_surf
        p_last_mixt = self._p_last_mixt
        cv_sup = self._cv_sup
        cv_rcy = self._cv_rcy
        p_mf_supp = self._p_mf_supp
        p_sup_pw = self._p_sup_pw
        p_rcy_pw = self._p_rcy_pw
        for p, loop in enumerate(loops):
            served = p_served[p]
            if len(served) == 2:
                s0, s1 = served
                p_zt[p] = (temps[s0] + temps[s1]) / 2
            else:
                acc = 0
                for s in served:
                    acc = acc + temps[s]
                p_zt[p] = acc / len(served)
            # Pump-curve and exchanger quantities depend only on the
            # commanded voltages; recompute them on actuation changes.
            sp = loop.supply_pump
            rp = loop.recycle_pump
            sv = sp._voltage
            rv = rp._voltage
            if sv != cv_sup[p] or rv != cv_rcy[p]:
                cv_sup[p] = sv
                cv_rcy[p] = rv
                f_supp = sp.flow_lps
                f_rcyc = rp.flow_lps
                total = f_supp + f_rcyc
                p_fsupp[p] = f_supp
                p_frcyc[p] = f_rcyc
                p_total[p] = total
                p_sup_pw[p] = sp.electrical_power_w()
                p_rcy_pw[p] = rp.electrical_power_w()
                if total > 0:
                    m_cp = mass_flow(total) * WATER_CP
                    effectiveness = 1.0 - math.exp(-self._p_ua[p] / m_cp)
                    p_mcp[p] = m_cp
                    p_emcp[p] = effectiveness * m_cp
                    p_eff[p] = effectiveness
                p_mf_supp[p] = mass_flow(f_supp) if f_supp > 0 else 0.0
            if p_total[p] > 0:
                # max() over the served generator, zone states frozen.
                best = None
                for s in served:
                    d = dew_point_from_humidity_ratio(ws[s])
                    if best is None or d > best:
                        best = d
                p_dew[p] = best
                if p_fsupp[p] > 0:
                    p_mwc[p] = (p_mf_supp[p] * dt) * WATER_CP
            p_rt[p] = loop.return_temp_c
            p_heat_abs[p] = loop.panel.heat_absorbed_j
            p_sup_e[p] = sp.energy_j
            p_rcy_e[p] = rp.energy_j
            p_sup_pd[p] = p_sup_pw[p] * dt
            p_rcy_pd[p] = p_rcy_pw[p] * dt

        # --- vent unit gap context -------------------------------------
        units = self._units
        door_weights = self._door_weights
        window_weights = self._window_weights
        door_f = plant.door_open_fraction
        w08 = 0.8 * plant.window_open_fraction
        occupants = plant.occupants
        equipment = plant.equipment_w
        opening = [door_f * door_weights[i] + w08 * window_weights[i]
                   for i in range(n)]
        in_dew_gap = dew_point_from_humidity_ratio(out_w)
        h_in_gap = moist_air_enthalpy(out_t, out_w)

        cu_fan = self._cu_fan
        cu_pumpv = self._cu_pumpv
        u_fanflow = self._u_fanflow
        u_flow = self._u_flow
        u_mass_air = self._u_mass_air
        u_alpha = self._u_alpha
        u_pumpflow = self._u_pumpflow
        u_pump_pw = self._u_pump_pw
        u_eff = self._u_eff
        u_maxwf = self._u_maxwf
        u_drop = self._u_drop
        u_appr = self._u_appr
        u_bf1 = self._u_bf1
        u_reheat_k = self._u_reheat_k
        u_reheat = self._u_reheat
        u_heat_e = self._u_heat_e
        u_fan_e = self._u_fan_e
        u_fan_pw = self._u_fan_pw
        u_fan_pd = self._u_fan_pd
        u_pump_e = self._u_pump_e
        u_pump_pd = self._u_pump_pd
        u_flap_pos = self._u_flap_pos
        u_flap_tgt = self._u_flap_tgt
        u_flap_rate = self._u_flap_rate
        u_flap_pd = self._u_flap_pd
        u_flap_e = self._u_flap_e
        u_supt = self._u_supt
        u_supw = self._u_supw
        u_eflow = self._u_eflow
        u_last_dew = self._u_last_dew
        u_last_heat = self._u_last_heat
        u_last_waterT = self._u_last_waterT
        for i, unit in enumerate(units):
            ab = unit.airbox
            fans = ab.fans
            st = fans.speed_step
            if st != cu_fan[i]:
                cu_fan[i] = st
                fan_flow = fans.flow_m3s
                u_fanflow[i] = fan_flow
                u_fan_pw[i] = fans.power_w
                # Sets the damper open/closed state for the gap, same
                # result every tick of it.
                flow = ab.damper.effective_flow(fan_flow)
                u_flow[i] = flow
                u_mass_air[i] = flow * AIR_DENSITY
                u_reheat[i] = flow > 0
            cp = ab.coil_pump
            pv = cp._voltage
            if pv != cu_pumpv[i]:
                cu_pumpv[i] = pv
                u_pumpflow[i] = cp.flow_lps
                u_pump_pw[i] = cp.electrical_power_w()
            # Replicate the (dt -> alpha) single-slot cache, including
            # its writeback, so scalar/vector interleavings agree.
            if dt != ab._alpha_dt:
                ab._alpha = 1.0 - (0.0 if dt == 0 else
                                   math.exp(-dt / ab.COIL_FLOW_TAU_S))
                ab._alpha_dt = dt
            u_alpha[i] = ab._alpha
            u_eff[i] = ab._coil_flow_effective_lps
            u_heat_e[i] = ab.coil.heat_extracted_j
            u_fan_e[i] = fans.energy_j
            u_fan_pd[i] = u_fan_pw[i] * dt
            u_pump_e[i] = cp.energy_j
            u_pump_pd[i] = u_pump_pw[i] * dt
            flap = unit.flap
            u_flap_pos[i] = flap._position
            u_flap_tgt[i] = flap._target
            u_flap_rate[i] = dt / self._u_travel[i]
            u_flap_pd[i] = self._u_motor_pw[i] * dt
            u_flap_e[i] = flap.energy_j
        fan_acc = plant.fan_energy_j

        if macro:
            heat_sum = [0.0] * n
            flow_sum = [0.0] * n
            flow_temp_sum = [0.0] * n
            flow_w_sum = [0.0] * n
            temp_sum = [0.0] * n
            w_sum = [0.0] * n

        # --- the fused tick loop ---------------------------------------
        for _ in range(ticks):
            tick_ph = [0.0] * n

            for p in range(n_panels):
                total = p_total[p]
                zone_temp = p_zt[p]
                if total > 0:
                    mix_t = ((p_fsupp[p] * r_st[0] + p_frcyc[p] * p_rt[p])
                             / total)
                    m_cp = p_mcp[p]
                    heat_w = p_emcp[p] * (zone_temp - mix_t)
                    return_t = mix_t + heat_w / m_cp
                    if heat_w > 0:
                        p_heat_abs[p] += heat_w * dt
                    p_rt[p] = return_t
                    if p_fsupp[p] > 0:
                        heat_j = p_mwc[p] * (return_t - r_st[0])
                        r_st[0] += heat_j / r_mass
                        r_st[1] += heat_j
                        if heat_j > 0:
                            r_st[2] += heat_j
                    share = heat_w / len(p_served[p])
                    for s in p_served[p]:
                        tick_ph[s] += share
                    mean_water = 0.5 * (mix_t + return_t)
                    surface = (mean_water
                               + p_film[p] * (zone_temp - mean_water))
                    margin = surface - p_dew[p]
                    g_worst = min(g_worst, margin)
                    if margin < g_margin:
                        g_viol += 1
                        cond_events += 1
                    p_last_heat[p] = heat_w
                    p_last_ret[p] = return_t
                    p_last_surf[p] = surface
                    p_last_mixt[p] = mix_t
                else:
                    mix_t = r_st[0]
                    p_rt[p] += (zone_temp - p_rt[p]) * dt / 600.0
                    p_last_heat[p] = 0.0
                    p_last_ret[p] = mix_t
                    p_last_surf[p] = zone_temp
                    p_last_mixt[p] = mix_t
                p_sup_e[p] += p_sup_pd[p]
                p_rcy_e[p] += p_rcy_pd[p]

            for i in range(n):
                waterT = v_st[0]
                eff = u_eff[i]
                eff += u_alpha[i] * (u_pumpflow[i] - eff)
                u_eff[i] = eff
                flow = u_flow[i]
                if flow == 0 or eff == 0:
                    o_temp = out_t
                    o_w = out_w
                    o_dew = in_dew_gap
                    heat_w = 0.0
                else:
                    wf = min(eff, u_maxwf[i])
                    o_dew = max(in_dew_gap - u_drop[i] * wf,
                                waterT + u_appr[i])
                    o_dew = min(o_dew, in_dew_gap)
                    o_w = humidity_ratio_from_dew_point(o_dew)
                    o_w = min(o_w, out_w)
                    wetness = wf / u_maxwf[i]
                    apparatus = waterT + u_appr[i] * (1.0 - wetness)
                    contact = u_bf1[i] * wetness
                    o_temp = out_t - contact * (out_t - apparatus)
                    o_temp = max(o_temp, o_dew)
                    heat_w = max(0.0, u_mass_air[i]
                                 * (h_in_gap - moist_air_enthalpy(o_temp,
                                                                  o_w)))
                sup_t = o_temp + u_reheat_k[i] if u_reheat[i] else o_temp
                u_heat_e[i] += heat_w * dt
                u_fan_e[i] += u_fan_pd[i]
                u_pump_e[i] += u_pump_pd[i]

                pos = u_flap_pos[i]
                tgt = u_flap_tgt[i]
                moving = abs(tgt - pos) > 1e-9
                if pos < tgt:
                    pos = min(tgt, pos + u_flap_rate[i])
                elif pos > tgt:
                    pos = max(tgt, pos - u_flap_rate[i])
                if moving:
                    u_flap_e[i] += u_flap_pd[i]
                u_flap_pos[i] = pos

                e_flow = flow * (0.25 + 0.75 * pos)
                if eff > 0 and heat_w > 0:
                    mf = mass_flow(eff)
                    m_cp = mf * WATER_CP
                    coil_return = v_st[0] + heat_w / m_cp
                    heat_j = (mf * dt) * WATER_CP * (coil_return - v_st[0])
                    v_st[0] += heat_j / v_mass
                    v_st[1] += heat_j
                    if heat_j > 0:
                        v_st[2] += heat_j
                fan_acc += u_fan_pd[i]

                u_supt[i] = sup_t
                u_supw[i] = o_w
                u_eflow[i] = e_flow
                u_last_dew[i] = o_dew
                u_last_heat[i] = heat_w
                u_last_waterT[i] = waterT
                if macro:
                    heat_sum[i] += tick_ph[i]
                    flow_sum[i] += e_flow
                    flow_temp_sum[i] += e_flow * sup_t
                    flow_w_sum[i] += e_flow * o_w
                    temp_sum[i] += sup_t
                    w_sum[i] += o_w

            if macro:
                _tank_tick(r_st, dt, ambient, r_ua, r_mass, r_hi, r_lo,
                           r_cap, r_par, r_cop)
                _tank_tick(v_st, dt, ambient, v_ua, v_mass, v_hi, v_lo,
                           v_cap, v_par, v_cop)

        # --- room advance ----------------------------------------------
        if macro:
            averaged: List[SubspaceInputs] = []
            for i in range(n):
                flow = flow_sum[i] / ticks
                if flow_sum[i] > 0:
                    supply_temp = flow_temp_sum[i] / flow_sum[i]
                    supply_w = flow_w_sum[i] / flow_sum[i]
                else:
                    supply_temp = temp_sum[i] / ticks
                    supply_w = w_sum[i] / ticks
                averaged.append(SubspaceInputs(
                    panel_heat_w=heat_sum[i] / ticks,
                    vent_flow_m3s=flow,
                    vent_supply_temp_c=supply_temp,
                    vent_supply_w=supply_w,
                    occupants=occupants[i],
                    equipment_w=equipment[i],
                    door_open_fraction=opening[i],
                ))
            # The closed-form eigensolve (and its bit-exact per-tick
            # clamp fallback) is shared with the scalar path.
            room.macro_step(ticks * dt, outdoor, averaged)
        else:
            self._fused_euler(dt, out_t, out_w, out_co2, temps, ws, co2s,
                              tick_ph, u_eflow, u_supt, u_supw,
                              occupants, equipment, opening)
            arrays.temp_c[:] = temps
            arrays.humidity_ratio[:] = ws
            arrays.co2_ppm[:] = co2s
            acc = 0
            for t in temps:
                acc = acc + t
            ambient = acc / n
            _tank_tick(r_st, dt, ambient, r_ua, r_mass, r_hi, r_lo,
                       r_cap, r_par, r_cop)
            _tank_tick(v_st, dt, ambient, v_ua, v_mass, v_hi, v_lo,
                       v_cap, v_par, v_cop)

        # --- write back ------------------------------------------------
        for p, loop in enumerate(loops):
            loop.return_temp_c = p_rt[p]
            loop.mix_temp_c = p_last_mixt[p]
            loop.mix_flow_lps = p_total[p] if p_total[p] > 0 else 0.0
            # p_eff is cached across gaps; a stopped loop reports
            # effectiveness 0.0 like RadiantPanel.exchange does.
            loop.last_result = PanelResult(
                p_last_heat[p], p_last_ret[p], p_last_surf[p],
                p_eff[p] if p_total[p] > 0 else 0.0)
            loop.panel.heat_absorbed_j = p_heat_abs[p]
            loop.supply_pump.energy_j = p_sup_e[p]
            loop.recycle_pump.energy_j = p_rcy_e[p]
        for i, unit in enumerate(units):
            ab = unit.airbox
            ab._coil_flow_effective_lps = u_eff[i]
            ab.coil.heat_extracted_j = u_heat_e[i]
            ab.coil.water_temp_c = u_last_waterT[i]
            ab.fans.energy_j = u_fan_e[i]
            ab.coil_pump.energy_j = u_pump_e[i]
            flap = unit.flap
            flap._position = u_flap_pos[i]
            flap.energy_j = u_flap_e[i]
            unit.last_output = AirboxOutput(
                flow_m3s=u_flow[i],
                supply_temp_c=u_supt[i],
                supply_humidity_ratio=u_supw[i],
                supply_dew_point_c=u_last_dew[i],
                coil_heat_w=u_last_heat[i],
                coil_water_flow_lps=u_eff[i],
                fan_power_w=u_fan_pw[i],
            )
        rtank.temp_c = r_st[0]
        rtank.energy_in_j = r_st[1]
        rtank.heat_returned_j = r_st[2]
        rtank.ambient_gain_j = r_st[3]
        rtank._chilling = r_st[4]
        rchiller.energy_j = r_st[5]
        rchiller.heat_moved_j = r_st[6]
        vtank.temp_c = v_st[0]
        vtank.energy_in_j = v_st[1]
        vtank.heat_returned_j = v_st[2]
        vtank.ambient_gain_j = v_st[3]
        vtank._chilling = v_st[4]
        vchiller.energy_j = v_st[5]
        vchiller.heat_moved_j = v_st[6]
        guard.worst_margin_k = g_worst
        guard.violations = g_viol
        room.condensation_events = cond_events
        plant.fan_energy_j = fan_acc
        plant.time_integrated_s += ticks * dt

    # ------------------------------------------------------------------
    def _fused_euler(self, dt: float, out_t: float, out_w: float,
                     out_co2: float, temps: list, ws: list, co2s: list,
                     panel_heat: list, vent_flow: list, sup_t: list,
                     sup_w: list, occupants: Sequence[float],
                     equipment: Sequence[float],
                     opening: Sequence[float]) -> None:
        """:meth:`Room.step` on unboxed zone lists (in place)."""
        room = self.plant.room
        params = room.params
        n = self._n
        adjacency = room.adjacency
        coupling_ua = params.coupling_ua_w_per_k
        mixing_flow = params.mixing_flow_m3s
        m_mix = room._m_mix
        mc_mix = room._mc_mix
        envelope_ua = params.envelope_ua_w_per_k
        capacity = params.capacity_j_per_k
        door_exchange = params.door_exchange_m3s
        buffer_factor = params.moisture_buffer_factor
        infil_flows = room._infil_flows
        water_masses = room._water_masses
        volumes = [s.volume_m3 for s in room.subspaces]
        max_euler_dt = room._max_euler_dt
        co2_floor = out_co2 * 0.5

        remaining = float(dt)
        while remaining > 1e-12:
            sub_dt = min(max_euler_dt, remaining)
            d_temp = [0.0] * n
            d_w = [0.0] * n
            d_co2 = [0.0] * n
            for i, j in adjacency:
                delta_t = temps[j] - temps[i]
                q_pair = coupling_ua * delta_t + mc_mix * delta_t
                d_temp[i] += q_pair
                d_temp[j] -= q_pair
                w_flux = m_mix * (ws[j] - ws[i])
                d_w[i] += w_flux
                d_w[j] -= w_flux
                c_flux = mixing_flow * (co2s[j] - co2s[i])
                d_co2[i] += c_flux
                d_co2[j] -= c_flux
            for i in range(n):
                temp = temps[i]
                w = ws[i]
                co2 = co2s[i]
                q = d_temp[i]
                q += envelope_ua * (out_t - temp)
                q += occupants[i] * OCCUPANT_SENSIBLE_W + equipment[i]
                q -= panel_heat[i]
                m_vent = vent_flow[i] * AIR_DENSITY
                q += m_vent * AIR_CP * (sup_t[i] - temp)
                infil_flow = infil_flows[i]
                door_flow = opening[i] * door_exchange
                m_exch = (infil_flow + door_flow) * AIR_DENSITY
                q += m_exch * AIR_CP * (out_t - temp)
                new_temp = temp + sub_dt * q / capacity

                mw = d_w[i] * buffer_factor
                mw += m_vent * (sup_w[i] - w)
                mw += m_exch * (out_w - w)
                mw += occupants[i] * OCCUPANT_LATENT_KGS
                new_w = w + sub_dt * mw / water_masses[i]
                if new_w < 1e-5:
                    new_w = 1e-5

                c = d_co2[i]
                c += vent_flow[i] * (out_co2 - co2)
                c += (infil_flow + door_flow) * (out_co2 - co2)
                c += occupants[i] * OCCUPANT_CO2_M3S * 1e6
                new_co2 = co2 + sub_dt * c / volumes[i]
                if new_co2 < co2_floor:
                    new_co2 = co2_floor

                temps[i] = new_temp
                ws[i] = new_w
                co2s[i] = new_co2
            remaining -= sub_dt


class BatchGapSolver:
    """Macro-step many same-topology rooms off the shared spectral cache.

    Sweep and bench campaigns replicate one scenario across seeds; each
    replica's macro gap assembles an independent ``(3, n, n)`` linear
    system.  The rooms share their structure hash (validated here), so
    every gap resolves through :mod:`repro.physics.spectral`: replicas
    whose actuation pattern matches — or matches any earlier gap of any
    room — reuse one decomposition instead of re-factorising, and the
    per-gap work collapses to small matmuls.  The propagation repeats
    :meth:`Room._solve_macro_gap`'s expressions on the same cached
    arrays, so results are bit-identical to the scalar path, and any
    room whose trajectory touches a clamp floor falls back to its own
    per-tick :meth:`Room.step`, exactly like the single-room path.
    """

    def __init__(self, rooms: Sequence[Room]) -> None:
        if not rooms:
            raise ValueError("need at least one room")
        base = rooms[0]._macro_base
        scale = rooms[0]._macro_scale
        key = rooms[0]._macro_key
        for room in rooms[1:]:
            if room._macro_key != key:
                raise ValueError(
                    "batched rooms must share topology, parameters "
                    "and solver")
        self.rooms = list(rooms)
        self._base = base
        self._scale = scale
        self._key = key
        self._solver = rooms[0]._solver

    def macro_step(self, dt: float, outdoors: Sequence[OutdoorState],
                   inputs_batch: Sequence[Sequence[SubspaceInputs]]
                   ) -> List[bool]:
        """Advance every room ``dt`` seconds in lockstep.

        Returns one flag per room: True when that room was integrated
        per tick (clamp fallback or degenerate algebra) instead of in
        closed form.
        """
        rooms = self.rooms
        b = len(rooms)
        if len(outdoors) != b or len(inputs_batch) != b:
            raise ValueError(
                "need one outdoor state and one input set per room")
        n = len(rooms[0].subspaces)
        x0 = np.empty((b, 3, n))
        diag = np.empty((b, 3, n))
        rhs = np.empty((b, 3, n))
        for k, room in enumerate(rooms):
            if len(inputs_batch[k]) != n:
                raise ValueError(
                    f"room {k} expects {n} subspace inputs, "
                    f"got {len(inputs_batch[k])}")
            x0[k], diag[k], rhs[k] = room._assemble_macro(
                outdoors[k], inputs_batch[k])
        rhs = rhs / self._scale
        fallback = [False] * b
        for k, room in enumerate(rooms):
            decomp = spectral.decomposition(
                self._key, diag[k], self._base, self._scale, self._solver)
            if decomp is None:
                # Degenerate algebra for this replica: hand it to its own
                # scalar macro path, which sorts out fallback exactly as
                # if no batching existed.
                room.macro_step(dt, outdoors[k], inputs_batch[k])
                fallback[k] = True
                continue
            a_inv, vals, vecs, vecs_inv = decomp
            x_eq = -(a_inv @ rhs[k][..., None])[..., 0]
            y0 = vecs_inv @ (x0[k] - x_eq)[..., None].astype(vecs.dtype)
            new_state = ((vecs @ (np.exp(vals * dt)[..., None] * y0))
                         [..., 0] + x_eq).real
            mid_state = ((vecs @ (np.exp(vals * (0.5 * dt))[..., None] * y0))
                         [..., 0] + x_eq).real
            co2_floor = outdoors[k].co2_ppm * 0.5
            room.macro_gaps += 1
            if (new_state[1].min() < 1e-5
                    or mid_state[1].min() < 1e-5
                    or x0[k, 1].min() <= 1e-5
                    or new_state[2].min() < co2_floor
                    or mid_state[2].min() < co2_floor
                    or x0[k, 2].min() <= co2_floor):
                room.macro_fallbacks += 1
                room.step(dt, outdoors[k], inputs_batch[k])
                fallback[k] = True
                continue
            for i, subspace in enumerate(room.subspaces):
                # float() for the same reason Room.macro_step uses it:
                # np.float64 must not leak into live state (round() on
                # numpy scalars perturbs the psychrometrics memo keys).
                subspace.state = SubspaceState(float(new_state[0, i]),
                                               float(new_state[1, i]),
                                               float(new_state[2, i]))
        return fallback
