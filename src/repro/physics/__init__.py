"""Physical substrate: psychrometrics, thermal zones, moisture, CO2, weather.

This package stands in for the BubbleZERO laboratory itself — the two
shipping containers, their envelope, the tropical Singapore air outside —
so that the paper's control and networking algorithms can be exercised
against the same observable dynamics the deployment saw.
"""

from repro.physics.psychrometrics import (
    MAGNUS_A,
    MAGNUS_B,
    dew_point,
    relative_humidity_from_dew_point,
    saturation_vapor_pressure,
    vapor_pressure,
    humidity_ratio_from_dew_point,
    dew_point_from_humidity_ratio,
    humidity_ratio,
    moist_air_enthalpy,
)
from repro.physics.exergy import carnot_cop, cooling_exergy, exergy_of_heat
from repro.physics.room import Room, Subspace, RoomGeometry
from repro.physics.weather import WeatherModel, TropicalWeather, ConstantWeather

__all__ = [
    "MAGNUS_A",
    "MAGNUS_B",
    "dew_point",
    "relative_humidity_from_dew_point",
    "saturation_vapor_pressure",
    "vapor_pressure",
    "humidity_ratio_from_dew_point",
    "dew_point_from_humidity_ratio",
    "humidity_ratio",
    "moist_air_enthalpy",
    "carnot_cop",
    "cooling_exergy",
    "exergy_of_heat",
    "Room",
    "Subspace",
    "RoomGeometry",
    "WeatherModel",
    "TropicalWeather",
    "ConstantWeather",
]
