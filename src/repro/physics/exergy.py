"""Exergy accounting — the theory BubbleZERO is built on (paper §II).

The exergy of a heat flux Q moved from a room at reference temperature
T0, relative to its working temperature T, is Ex = Q (1 - T/T0).  A
smaller temperature gradient between working and reference temperature
means less exergy destruction, hence less electrical work for the same
heat: this is why an 18 degC chilled-water loop beats an 8 degC air loop.

Temperatures here are in Kelvin where the name says so; helper
converters accept Celsius for convenience.
"""

from __future__ import annotations

KELVIN_OFFSET = 273.15


class ExergyError(ValueError):
    """Raised for non-physical temperature inputs."""


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert Celsius to Kelvin, rejecting sub-absolute-zero inputs."""
    temp_k = temp_c + KELVIN_OFFSET
    if temp_k <= 0:
        raise ExergyError(f"temperature below absolute zero: {temp_c} degC")
    return temp_k


def exergy_of_heat(heat_w: float, working_temp_k: float,
                   reference_temp_k: float) -> float:
    """Exergy flux of heat ``heat_w`` at ``working_temp_k`` against a
    reference (room) temperature, W.  Ex = Q (1 - T/T0) from paper §II.
    """
    if working_temp_k <= 0 or reference_temp_k <= 0:
        raise ExergyError("temperatures must be positive Kelvin")
    return heat_w * (1.0 - working_temp_k / reference_temp_k)


def cooling_exergy(heat_w: float, working_temp_c: float,
                   room_temp_c: float) -> float:
    """Magnitude of exergy required to extract ``heat_w`` of heat using a
    working medium at ``working_temp_c`` from a room at ``room_temp_c``.

    Lower working temperature (larger gradient) => more exergy => more
    electrical work.  This is the quantity the low-exergy design
    minimises by using 18 degC water instead of 8 degC air.
    """
    working_k = celsius_to_kelvin(working_temp_c)
    room_k = celsius_to_kelvin(room_temp_c)
    return abs(exergy_of_heat(heat_w, working_k, room_k))


def carnot_cop(cold_temp_k: float, hot_temp_k: float) -> float:
    """Ideal (Carnot) coefficient of performance of a chiller moving heat
    from ``cold_temp_k`` to ``hot_temp_k``: T_c / (T_h - T_c).

    This is the thermodynamic ceiling every real chiller is a fraction
    of; the low-exergy benefit of raising the chilled-water temperature
    is visible directly in this expression.
    """
    if cold_temp_k <= 0 or hot_temp_k <= 0:
        raise ExergyError("temperatures must be positive Kelvin")
    if hot_temp_k <= cold_temp_k:
        raise ExergyError(
            f"heat rejection temperature ({hot_temp_k} K) must exceed "
            f"cold-side temperature ({cold_temp_k} K)")
    return cold_temp_k / (hot_temp_k - cold_temp_k)


def carnot_cop_celsius(cold_temp_c: float, hot_temp_c: float) -> float:
    """Carnot COP with Celsius inputs."""
    return carnot_cop(celsius_to_kelvin(cold_temp_c),
                      celsius_to_kelvin(hot_temp_c))
