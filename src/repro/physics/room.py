"""Multi-subspace thermal / moisture / CO2 model of the BubbleZERO lab.

The laboratory is a 60 m^3 container office (6 m x 5 m x 2 m) organised
into four equal subspaces (paper Fig. 2), each served by one airbox +
CO2flap pair and sharing two radiant ceiling panels.  We model it as a
lumped-capacitance RC network:

* one air/furnishing thermal node per subspace, coupled to (i) adjacent
  subspaces (conduction + air mixing), (ii) the outdoor environment
  through the envelope, and (iii) the radiant panels and ventilation air;
* one moisture node per subspace (humidity ratio of the air volume);
* one CO2 node per subspace (well-mixed concentration).

Door/window events add a temporary bulk air-exchange path with outdoors,
weighted per subspace by proximity to the opening (the door is in
subspace 1, nearest subspace 2 — paper SectionV-A).

The model is integrated with explicit Euler.  All time constants are
minutes, so the default 1 s step is comfortably stable; the step
subdivides automatically if a larger dt is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.physics import spectral
from repro.physics.psychrometrics import (
    dew_point_from_humidity_ratio,
    humidity_ratio_from_dew_point,
    relative_humidity_from_ratio,
)
from repro.physics.weather import OutdoorState

AIR_DENSITY = 1.2        # kg/m^3
AIR_CP = 1006.0          # J/kg/K
LATENT_HEAT = 2.45e6     # J/kg at room temperature

# Occupant loads (seated office work, ASHRAE-typical).
OCCUPANT_SENSIBLE_W = 70.0
OCCUPANT_LATENT_KGS = 1.9e-5    # ~68 g/h of water vapour
OCCUPANT_CO2_M3S = 5.0e-6       # ~0.005 L/s of CO2 per person


@dataclass(frozen=True)
class RoomGeometry:
    """Physical dimensions of the laboratory (paper §II)."""

    length_m: float = 6.0
    width_m: float = 5.0
    height_m: float = 2.0
    subspace_count: int = 4

    @property
    def volume_m3(self) -> float:
        return self.length_m * self.width_m * self.height_m

    @property
    def subspace_volume_m3(self) -> float:
        return self.volume_m3 / self.subspace_count


@dataclass(frozen=True)
class RoomParameters:
    """Calibrated lumped parameters (see DESIGN.md §4).

    ``capacity_j_per_k`` is the *effective* per-subspace heat capacity:
    the air itself plus the thermally-fast furnishing mass that moves
    with it on the half-hour timescale of the paper's experiments.
    """

    capacity_j_per_k: float = 1.1e5       # J/K per subspace
    envelope_ua_w_per_k: float = 58.0     # W/K per subspace (insulated facade)
    coupling_ua_w_per_k: float = 55.0     # W/K between adjacent subspaces
    mixing_flow_m3s: float = 0.012        # bulk air exchange between adjacents
    infiltration_ach: float = 0.02        # the lab is a sealed container
    door_exchange_m3s: float = 0.30       # bulk flow when the door is open
    moisture_buffer_factor: float = 1.2   # hygroscopic mass slows dw/dt


# 2 x 2 arrangement: subspaces 0,1 on the door side, 2,3 at the back.
#      [0][1]
#      [2][3]
ADJACENCY: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 3), (2, 3))

# Share of a door/window opening's air exchange seen by each subspace.
# The door sits in subspace 1 of the paper (our index 0), closest to
# subspace 2 (our index 1) — paper §V-A.  The window is on the opposite
# facade, so window events disturb the back subspaces most.
DOOR_WEIGHTS: Tuple[float, ...] = (0.55, 0.30, 0.09, 0.06)
WINDOW_WEIGHTS: Tuple[float, ...] = (0.09, 0.06, 0.55, 0.30)


@dataclass
class SubspaceInputs:
    """Per-step boundary inputs for one subspace."""

    panel_heat_w: float = 0.0           # heat *extracted* by radiant panel (>= 0)
    vent_flow_m3s: float = 0.0          # supply air flow (balanced by exhaust)
    vent_supply_temp_c: float = 25.0    # supply air dry bulb
    vent_supply_w: float = 0.010        # supply air humidity ratio
    occupants: float = 0.0
    equipment_w: float = 40.0           # standing electronics load
    door_open_fraction: float = 0.0     # 0..1 of the door-exchange path


@dataclass(slots=True)
class SubspaceState:
    """Instantaneous air state of one subspace."""

    temp_c: float
    humidity_ratio: float
    co2_ppm: float

    @property
    def dew_point_c(self) -> float:
        return dew_point_from_humidity_ratio(self.humidity_ratio)

    def relative_humidity(self) -> float:
        return relative_humidity_from_ratio(self.temp_c, self.humidity_ratio)


class Subspace:
    """One quarter of the laboratory: state plus its volume."""

    def __init__(self, index: int, volume_m3: float,
                 state: SubspaceState) -> None:
        self.index = index
        self.volume_m3 = volume_m3
        self.state = state

    @property
    def air_mass_kg(self) -> float:
        return self.volume_m3 * AIR_DENSITY


class Room:
    """The four-subspace laboratory model.

    Parameters
    ----------
    geometry, params:
        physical configuration; defaults reproduce the paper's lab.
    initial_temp_c, initial_dew_c, initial_co2_ppm:
        uniform initial indoor state.  The paper's trial starts with the
        room in equilibrium with outdoors (28.9 degC / 27.4 degC dew).
    """

    def __init__(self,
                 geometry: Optional[RoomGeometry] = None,
                 params: Optional[RoomParameters] = None,
                 initial_temp_c: float = 28.9,
                 initial_dew_c: float = 27.4,
                 initial_co2_ppm: float = 450.0,
                 adjacency: Optional[Tuple[Tuple[int, int], ...]] = None,
                 solver: str = "dense") -> None:
        self.geometry = geometry or RoomGeometry()
        self.params = params or RoomParameters()
        n_sub = self.geometry.subspace_count
        # The coupling graph defaults to the paper's 2x2 arrangement,
        # trimmed to the pairs that exist for smaller subspace counts.
        self.adjacency: Tuple[Tuple[int, int], ...] = tuple(
            (i, j) for i, j in (ADJACENCY if adjacency is None else adjacency)
            if i < n_sub and j < n_sub)
        if initial_dew_c > initial_temp_c:
            raise ValueError("initial dew point cannot exceed temperature")
        w0 = humidity_ratio_from_dew_point(initial_dew_c)
        self.subspaces: List[Subspace] = [
            Subspace(i, self.geometry.subspace_volume_m3,
                     SubspaceState(initial_temp_c, w0, initial_co2_ppm))
            for i in range(self.geometry.subspace_count)
        ]
        self._max_euler_dt = 1.0
        self.condensation_events = 0
        # Macro-solver health counters (read by obs.collect's physics
        # snapshot): closed-form gaps solved vs gaps handed back to the
        # per-tick integrator by the clamp/degeneracy probes.
        self.macro_gaps = 0
        self.macro_fallbacks = 0
        # Step-invariant factors of the Euler update, hoisted out of the
        # per-tick loop.  ``params`` is a frozen dataclass, so these stay
        # valid for the life of the Room.  Each expression repeats the
        # in-loop grouping exactly, keeping the update bit-identical.
        params = self.params
        self._m_mix = params.mixing_flow_m3s * AIR_DENSITY
        self._mc_mix = self._m_mix * AIR_CP
        self._infil_flows = [
            (params.infiltration_ach / 3600.0) * s.volume_m3
            for s in self.subspaces
        ]
        self._water_masses = [
            s.air_mass_kg * params.moisture_buffer_factor
            for s in self.subspaces
        ]
        # Macro-step machinery (see ``macro_step``): the symmetric
        # coupling part of each quantity's system matrix and the row
        # scaling (thermal capacity, buffered water mass, air volume)
        # are state-independent, so both are assembled once.  Layout:
        # index 0 = temperature, 1 = humidity ratio, 2 = CO2.
        n = len(self.subspaces)
        base = np.zeros((3, n, n))
        k_q = (params.coupling_ua_w_per_k + self._mc_mix,
               self._m_mix * params.moisture_buffer_factor,
               params.mixing_flow_m3s)
        for i, j in self.adjacency:
            for q in range(3):
                base[q, i, i] -= k_q[q]
                base[q, i, j] += k_q[q]
                base[q, j, j] -= k_q[q]
                base[q, j, i] += k_q[q]
        self._macro_base = base
        self._macro_scale = np.array([
            [params.capacity_j_per_k] * n,
            self._water_masses,
            [s.volume_m3 for s in self.subspaces],
        ])
        # Decompositions live in the process-wide spectral cache
        # (repro.physics.spectral), keyed by this room's structure hash
        # plus the exact diagonal-loss vector: the forcing varies every
        # gap (panel heat tracks the room) but the loss terms only
        # change when an actuator command does, so steady operation
        # reuses one eigendecomposition across many gaps — and across
        # every room and physics path with the same structure.
        self._solver = solver
        self._macro_key = spectral.system_key(self._macro_base,
                                              self._macro_scale, solver)

    # ------------------------------------------------------------------
    # Observation helpers
    # ------------------------------------------------------------------
    def state_of(self, index: int) -> SubspaceState:
        return self.subspaces[index].state

    def mean_temp_c(self) -> float:
        return sum(s.state.temp_c for s in self.subspaces) / len(self.subspaces)

    def mean_humidity_ratio(self) -> float:
        return (sum(s.state.humidity_ratio for s in self.subspaces)
                / len(self.subspaces))

    def mean_dew_point_c(self) -> float:
        return dew_point_from_humidity_ratio(self.mean_humidity_ratio())

    def mean_co2_ppm(self) -> float:
        return sum(s.state.co2_ppm for s in self.subspaces) / len(self.subspaces)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def step(self, dt: float, outdoor: OutdoorState,
             inputs: Sequence[SubspaceInputs]) -> None:
        """Advance the room state by ``dt`` seconds.

        ``inputs`` must provide one :class:`SubspaceInputs` per subspace.
        Larger ``dt`` values are internally subdivided to the stable
        Euler step.
        """
        if len(inputs) != len(self.subspaces):
            raise ValueError(
                f"expected {len(self.subspaces)} subspace inputs, "
                f"got {len(inputs)}")
        remaining = float(dt)
        while remaining > 1e-12:
            sub_dt = min(self._max_euler_dt, remaining)
            self._euler_step(sub_dt, outdoor, inputs)
            remaining -= sub_dt

    def _euler_step(self, dt: float, outdoor: OutdoorState,
                    inputs: Sequence[SubspaceInputs]) -> None:
        # The hottest pure-Python loop of a quiet run: parameter products
        # are precomputed in ``__init__`` and attribute reads hoisted to
        # locals, with every floating-point grouping kept identical to
        # the original expression so trajectories match bit for bit.
        params = self.params
        outdoor_w = outdoor.humidity_ratio
        outdoor_temp = outdoor.temp_c
        outdoor_co2 = outdoor.co2_ppm
        subspaces = self.subspaces
        n = len(subspaces)
        d_temp = [0.0] * n
        d_w = [0.0] * n
        d_co2 = [0.0] * n
        coupling_ua = params.coupling_ua_w_per_k
        mixing_flow = params.mixing_flow_m3s
        m_mix = self._m_mix        # mixing_flow * AIR_DENSITY
        mc_mix = self._mc_mix      # (mixing_flow * AIR_DENSITY) * AIR_CP

        # Inter-subspace coupling (conduction + bulk mixing), symmetric.
        for i, j in self.adjacency:
            si, sj = subspaces[i].state, subspaces[j].state
            delta_t = sj.temp_c - si.temp_c
            q_pair = coupling_ua * delta_t + mc_mix * delta_t
            d_temp[i] += q_pair
            d_temp[j] -= q_pair
            w_flux = m_mix * (sj.humidity_ratio - si.humidity_ratio)
            d_w[i] += w_flux
            d_w[j] -= w_flux
            c_flux = mixing_flow * (sj.co2_ppm - si.co2_ppm)
            d_co2[i] += c_flux
            d_co2[j] -= c_flux

        envelope_ua = params.envelope_ua_w_per_k
        capacity = params.capacity_j_per_k
        door_exchange = params.door_exchange_m3s
        buffer_factor = params.moisture_buffer_factor
        infil_flows = self._infil_flows
        water_masses = self._water_masses
        co2_floor = outdoor_co2 * 0.5

        for i, subspace in enumerate(subspaces):
            state = subspace.state
            inp = inputs[i]
            temp = state.temp_c
            w = state.humidity_ratio
            co2 = state.co2_ppm

            # --- sensible heat balance (W) ---
            q = d_temp[i]
            q += envelope_ua * (outdoor_temp - temp)
            q += inp.occupants * OCCUPANT_SENSIBLE_W + inp.equipment_w
            q -= inp.panel_heat_w
            m_vent = inp.vent_flow_m3s * AIR_DENSITY
            q += m_vent * AIR_CP * (inp.vent_supply_temp_c - temp)
            # Supply air displaces room air out through the CO2flap, so
            # the ventilation term above already closes its own mass
            # balance; only infiltration and door openings exchange raw
            # outdoor air.
            infil_flow = infil_flows[i]
            door_flow = inp.door_open_fraction * door_exchange
            m_exch = (infil_flow + door_flow) * AIR_DENSITY
            q += m_exch * AIR_CP * (outdoor_temp - temp)
            new_temp = temp + dt * q / capacity

            # --- moisture balance (kg water / s) ---
            mw = d_w[i] * buffer_factor  # mixing acts on buffer too
            mw += m_vent * (inp.vent_supply_w - w)
            mw += m_exch * (outdoor_w - w)
            mw += inp.occupants * OCCUPANT_LATENT_KGS
            new_w = w + dt * mw / water_masses[i]
            if new_w < 1e-5:
                new_w = 1e-5

            # --- CO2 balance (ppm * m^3 / s) ---
            c = d_co2[i]
            c += inp.vent_flow_m3s * (outdoor_co2 - co2)
            c += (infil_flow + door_flow) * (outdoor_co2 - co2)
            c += inp.occupants * OCCUPANT_CO2_M3S * 1e6
            new_co2 = co2 + dt * c / subspace.volume_m3
            if new_co2 < co2_floor:
                new_co2 = co2_floor

            subspace.state = SubspaceState(new_temp, new_w, new_co2)

    def macro_step(self, dt: float, outdoor: OutdoorState,
                   inputs: Sequence[SubspaceInputs]) -> None:
        """Advance the room ``dt`` seconds in one closed-form step.

        With the boundary ``inputs`` frozen, every balance integrated by
        :meth:`_euler_step` is linear in its own state vector — the
        subspace temperatures, humidity ratios and CO2 concentrations
        each satisfy ``x' = A x + r`` with a constant 4x4 coupling
        matrix ``A`` and forcing ``r``.  The exact solution over the
        whole gap is

            x(dt) = x_eq + exp(A dt) (x(0) - x_eq),   x_eq = -A^-1 r,

        evaluated here through an eigendecomposition of ``A`` (the
        matrix is strictly diagonally dominant with negative diagonal —
        envelope and infiltration losses guarantee decay — so the
        solve is well posed for the supported geometry).  This is the
        macro-stepping fast path: one call replaces ``dt`` unit Euler
        ticks when the scheduler finds an event-free gap.  It differs
        from unit stepping only by the Euler truncation error of the
        reference path itself.  The reference path clamps humidity
        (>= 1e-5) and CO2 (>= half outdoor) once per tick; whenever the
        closed-form trajectory touches either floor — probed at the
        gap's start, midpoint and endpoint — the gap is handed back to
        :meth:`step` so the clamp binds at the same tick it would on
        the reference path.  Also falls back to :meth:`step` if the
        linear algebra degenerates.
        """
        if len(inputs) != len(self.subspaces):
            raise ValueError(
                f"expected {len(self.subspaces)} subspace inputs, "
                f"got {len(inputs)}")
        x0, diag, rhs = self._assemble_macro(outdoor, inputs)
        new_state = self._solve_macro_gap(dt, x0, diag, rhs,
                                          outdoor.co2_ppm * 0.5)
        self.macro_gaps += 1
        if new_state is None:
            self.macro_fallbacks += 1
            self.step(dt, outdoor, inputs)
            return
        new_t, new_w, new_c = new_state
        for i, subspace in enumerate(self.subspaces):
            # float() keeps np.float64 out of the live state.  The
            # conversion is value-exact, but the type matters: round()
            # on np.float64 is not correctly rounded, so letting numpy
            # scalars leak into the psychrometrics memo keys makes the
            # trajectory depend on which path produced a value.
            subspace.state = SubspaceState(float(new_t[i]), float(new_w[i]),
                                           float(new_c[i]))

    def _assemble_macro(self, outdoor: OutdoorState,
                        inputs: Sequence[SubspaceInputs]
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Assemble the stacked linear systems for one macro gap.

        Returns ``(x0, diag, rhs)`` as (3, n) arrays: the initial state,
        the input-dependent diagonal losses and the (unscaled) forcing
        of the three quantities.  The state-independent coupling pattern
        lives in ``self._macro_base``.
        """
        params = self.params
        subspaces = self.subspaces
        n = len(subspaces)
        outdoor_w = outdoor.humidity_ratio
        outdoor_temp = outdoor.temp_c
        outdoor_co2 = outdoor.co2_ppm
        diag = np.zeros((3, n))
        rhs = np.zeros((3, n))
        x0 = np.empty((3, n))
        envelope_ua = params.envelope_ua_w_per_k
        door_exchange = params.door_exchange_m3s
        for i, subspace in enumerate(subspaces):
            state = subspace.state
            inp = inputs[i]
            x0[0, i] = state.temp_c
            x0[1, i] = state.humidity_ratio
            x0[2, i] = state.co2_ppm
            m_vent = inp.vent_flow_m3s * AIR_DENSITY
            infil_flow = self._infil_flows[i]
            door_flow = inp.door_open_fraction * door_exchange
            m_exch = (infil_flow + door_flow) * AIR_DENSITY
            # Sensible heat: the _euler_step balance split into the part
            # proportional to the local state (diagonal loss) and the
            # constant forcing.
            diag[0, i] = envelope_ua + (m_vent + m_exch) * AIR_CP
            rhs[0, i] = ((envelope_ua + m_exch * AIR_CP) * outdoor_temp
                         + m_vent * AIR_CP * inp.vent_supply_temp_c
                         + inp.occupants * OCCUPANT_SENSIBLE_W
                         + inp.equipment_w - inp.panel_heat_w)
            # Moisture.
            diag[1, i] = m_vent + m_exch
            rhs[1, i] = (m_vent * inp.vent_supply_w + m_exch * outdoor_w
                         + inp.occupants * OCCUPANT_LATENT_KGS)
            # CO2 (volumetric flows act on concentration directly).
            g = inp.vent_flow_m3s + infil_flow + door_flow
            diag[2, i] = g
            rhs[2, i] = g * outdoor_co2 + inp.occupants * OCCUPANT_CO2_M3S * 1e6
        return x0, diag, rhs

    def _macro_decomposition(self, diag: np.ndarray) -> Optional[tuple]:
        """Eigendecomposition for a diagonal-loss vector, memoised.

        Returns ``(a_inv, vals, vecs, vecs_inv)`` or ``None`` when the
        linear algebra degenerates (caller falls back to per-tick
        integration).  Memoisation lives in the shared spectral cache,
        keyed on the exact diag bytes so a hit is bit-identical to a
        fresh decomposition.
        """
        return spectral.decomposition(self._macro_key, diag,
                                      self._macro_base,
                                      self._macro_scale, self._solver)

    def _solve_macro_gap(self, dt: float, x0: np.ndarray, diag: np.ndarray,
                         rhs: np.ndarray, co2_floor: float
                         ) -> Optional[np.ndarray]:
        """Closed-form advance of one assembled gap; ``None`` = fall back.

        ``rhs`` is the unscaled forcing from :meth:`_assemble_macro`;
        the row scaling is applied here.  Returns the (3, n) end state,
        or ``None`` when the decomposition degenerates or the trajectory
        touches a clamp floor — in either case the caller must integrate
        the gap through :meth:`step` so it stays bit-identical to the
        per-tick reference.
        """
        rhs = rhs / self._macro_scale

        decomp = self._macro_decomposition(diag)
        if decomp is None:
            return None
        a_inv, vals, vecs, vecs_inv = decomp

        # Exact solution of x' = A x + r over the gap:
        #   x(dt) = x_eq + exp(A dt) (x0 - x_eq),   x_eq = -A^-1 r.
        # Eigenvalues may come in complex-conjugate pairs for a general
        # (non-symmetric) coupling matrix; the imaginary parts of the
        # reconstructed state cancel and the real part is the answer.
        x_eq = -(a_inv @ rhs[..., None])[..., 0]
        y0 = vecs_inv @ (x0 - x_eq)[..., None].astype(vecs.dtype)
        exp_vals = np.exp(vals * dt)
        new_state = ((vecs @ (exp_vals[..., None] * y0))[..., 0] + x_eq).real

        # The reference path applies the floor clamps once per tick, so
        # a floor that binds anywhere inside the gap makes the unclamped
        # closed form diverge from it.  Probe the trajectory at the
        # gap's start (a state already pinned at a floor means the clamp
        # is actively binding), midpoint and endpoint; on any touch,
        # integrate this gap per tick instead.  The eigenvalues are real
        # (the coupling matrix is similar to a symmetric one via the
        # capacity scaling), so trajectories are sums of real
        # exponentials and the three probes bracket any excursion the
        # scheduler's gap lengths can produce.
        mid_state = ((vecs @ (np.exp(vals * (0.5 * dt))[..., None] * y0))
                     [..., 0] + x_eq).real
        if (new_state[1].min() < 1e-5 or mid_state[1].min() < 1e-5
                or x0[1].min() <= 1e-5
                or new_state[2].min() < co2_floor
                or mid_state[2].min() < co2_floor
                or x0[2].min() <= co2_floor):
            return None
        return new_state

    # ------------------------------------------------------------------
    def record_condensation(self) -> None:
        """Count a condensation incident (panel surface below dew point).

        The hydronics layer calls this when the mixed-water control ever
        lets the panel surface cross the local dew point; integration
        tests assert it stays at zero.
        """
        self.condensation_events += 1
