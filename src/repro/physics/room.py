"""Multi-subspace thermal / moisture / CO2 model of the BubbleZERO lab.

The laboratory is a 60 m^3 container office (6 m x 5 m x 2 m) organised
into four equal subspaces (paper Fig. 2), each served by one airbox +
CO2flap pair and sharing two radiant ceiling panels.  We model it as a
lumped-capacitance RC network:

* one air/furnishing thermal node per subspace, coupled to (i) adjacent
  subspaces (conduction + air mixing), (ii) the outdoor environment
  through the envelope, and (iii) the radiant panels and ventilation air;
* one moisture node per subspace (humidity ratio of the air volume);
* one CO2 node per subspace (well-mixed concentration).

Door/window events add a temporary bulk air-exchange path with outdoors,
weighted per subspace by proximity to the opening (the door is in
subspace 1, nearest subspace 2 — paper SectionV-A).

The model is integrated with explicit Euler.  All time constants are
minutes, so the default 1 s step is comfortably stable; the step
subdivides automatically if a larger dt is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.physics.psychrometrics import (
    dew_point_from_humidity_ratio,
    humidity_ratio_from_dew_point,
    relative_humidity_from_ratio,
)
from repro.physics.weather import OutdoorState

AIR_DENSITY = 1.2        # kg/m^3
AIR_CP = 1006.0          # J/kg/K
LATENT_HEAT = 2.45e6     # J/kg at room temperature

# Occupant loads (seated office work, ASHRAE-typical).
OCCUPANT_SENSIBLE_W = 70.0
OCCUPANT_LATENT_KGS = 1.9e-5    # ~68 g/h of water vapour
OCCUPANT_CO2_M3S = 5.0e-6       # ~0.005 L/s of CO2 per person


@dataclass(frozen=True)
class RoomGeometry:
    """Physical dimensions of the laboratory (paper §II)."""

    length_m: float = 6.0
    width_m: float = 5.0
    height_m: float = 2.0
    subspace_count: int = 4

    @property
    def volume_m3(self) -> float:
        return self.length_m * self.width_m * self.height_m

    @property
    def subspace_volume_m3(self) -> float:
        return self.volume_m3 / self.subspace_count


@dataclass(frozen=True)
class RoomParameters:
    """Calibrated lumped parameters (see DESIGN.md §4).

    ``capacity_j_per_k`` is the *effective* per-subspace heat capacity:
    the air itself plus the thermally-fast furnishing mass that moves
    with it on the half-hour timescale of the paper's experiments.
    """

    capacity_j_per_k: float = 1.1e5       # J/K per subspace
    envelope_ua_w_per_k: float = 58.0     # W/K per subspace (insulated facade)
    coupling_ua_w_per_k: float = 55.0     # W/K between adjacent subspaces
    mixing_flow_m3s: float = 0.012        # bulk air exchange between adjacents
    infiltration_ach: float = 0.02        # the lab is a sealed container
    door_exchange_m3s: float = 0.30       # bulk flow when the door is open
    moisture_buffer_factor: float = 1.2   # hygroscopic mass slows dw/dt


# 2 x 2 arrangement: subspaces 0,1 on the door side, 2,3 at the back.
#      [0][1]
#      [2][3]
ADJACENCY: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 3), (2, 3))

# Share of a door/window opening's air exchange seen by each subspace.
# The door sits in subspace 1 of the paper (our index 0), closest to
# subspace 2 (our index 1) — paper §V-A.  The window is on the opposite
# facade, so window events disturb the back subspaces most.
DOOR_WEIGHTS: Tuple[float, ...] = (0.55, 0.30, 0.09, 0.06)
WINDOW_WEIGHTS: Tuple[float, ...] = (0.09, 0.06, 0.55, 0.30)


@dataclass
class SubspaceInputs:
    """Per-step boundary inputs for one subspace."""

    panel_heat_w: float = 0.0           # heat *extracted* by radiant panel (>= 0)
    vent_flow_m3s: float = 0.0          # supply air flow (balanced by exhaust)
    vent_supply_temp_c: float = 25.0    # supply air dry bulb
    vent_supply_w: float = 0.010        # supply air humidity ratio
    occupants: float = 0.0
    equipment_w: float = 40.0           # standing electronics load
    door_open_fraction: float = 0.0     # 0..1 of the door-exchange path


@dataclass
class SubspaceState:
    """Instantaneous air state of one subspace."""

    temp_c: float
    humidity_ratio: float
    co2_ppm: float

    @property
    def dew_point_c(self) -> float:
        return dew_point_from_humidity_ratio(self.humidity_ratio)

    def relative_humidity(self) -> float:
        return relative_humidity_from_ratio(self.temp_c, self.humidity_ratio)


class Subspace:
    """One quarter of the laboratory: state plus its volume."""

    def __init__(self, index: int, volume_m3: float,
                 state: SubspaceState) -> None:
        self.index = index
        self.volume_m3 = volume_m3
        self.state = state

    @property
    def air_mass_kg(self) -> float:
        return self.volume_m3 * AIR_DENSITY


class Room:
    """The four-subspace laboratory model.

    Parameters
    ----------
    geometry, params:
        physical configuration; defaults reproduce the paper's lab.
    initial_temp_c, initial_dew_c, initial_co2_ppm:
        uniform initial indoor state.  The paper's trial starts with the
        room in equilibrium with outdoors (28.9 degC / 27.4 degC dew).
    """

    def __init__(self,
                 geometry: Optional[RoomGeometry] = None,
                 params: Optional[RoomParameters] = None,
                 initial_temp_c: float = 28.9,
                 initial_dew_c: float = 27.4,
                 initial_co2_ppm: float = 450.0) -> None:
        self.geometry = geometry or RoomGeometry()
        self.params = params or RoomParameters()
        if initial_dew_c > initial_temp_c:
            raise ValueError("initial dew point cannot exceed temperature")
        w0 = humidity_ratio_from_dew_point(initial_dew_c)
        self.subspaces: List[Subspace] = [
            Subspace(i, self.geometry.subspace_volume_m3,
                     SubspaceState(initial_temp_c, w0, initial_co2_ppm))
            for i in range(self.geometry.subspace_count)
        ]
        self._max_euler_dt = 1.0
        self.condensation_events = 0

    # ------------------------------------------------------------------
    # Observation helpers
    # ------------------------------------------------------------------
    def state_of(self, index: int) -> SubspaceState:
        return self.subspaces[index].state

    def mean_temp_c(self) -> float:
        return sum(s.state.temp_c for s in self.subspaces) / len(self.subspaces)

    def mean_humidity_ratio(self) -> float:
        return (sum(s.state.humidity_ratio for s in self.subspaces)
                / len(self.subspaces))

    def mean_dew_point_c(self) -> float:
        return dew_point_from_humidity_ratio(self.mean_humidity_ratio())

    def mean_co2_ppm(self) -> float:
        return sum(s.state.co2_ppm for s in self.subspaces) / len(self.subspaces)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def step(self, dt: float, outdoor: OutdoorState,
             inputs: Sequence[SubspaceInputs]) -> None:
        """Advance the room state by ``dt`` seconds.

        ``inputs`` must provide one :class:`SubspaceInputs` per subspace.
        Larger ``dt`` values are internally subdivided to the stable
        Euler step.
        """
        if len(inputs) != len(self.subspaces):
            raise ValueError(
                f"expected {len(self.subspaces)} subspace inputs, "
                f"got {len(inputs)}")
        remaining = float(dt)
        while remaining > 1e-12:
            sub_dt = min(self._max_euler_dt, remaining)
            self._euler_step(sub_dt, outdoor, inputs)
            remaining -= sub_dt

    def _euler_step(self, dt: float, outdoor: OutdoorState,
                    inputs: Sequence[SubspaceInputs]) -> None:
        params = self.params
        outdoor_w = outdoor.humidity_ratio
        n = len(self.subspaces)
        d_temp = [0.0] * n
        d_w = [0.0] * n
        d_co2 = [0.0] * n

        # Inter-subspace coupling (conduction + bulk mixing), symmetric.
        for i, j in ADJACENCY:
            si, sj = self.subspaces[i].state, self.subspaces[j].state
            q_cond = params.coupling_ua_w_per_k * (sj.temp_c - si.temp_c)
            m_mix = params.mixing_flow_m3s * AIR_DENSITY
            q_mix = m_mix * AIR_CP * (sj.temp_c - si.temp_c)
            d_temp[i] += (q_cond + q_mix)
            d_temp[j] -= (q_cond + q_mix)
            w_flux = m_mix * (sj.humidity_ratio - si.humidity_ratio)
            d_w[i] += w_flux
            d_w[j] -= w_flux
            c_flux = params.mixing_flow_m3s * (sj.co2_ppm - si.co2_ppm)
            d_co2[i] += c_flux
            d_co2[j] -= c_flux

        for i, subspace in enumerate(self.subspaces):
            state = subspace.state
            inp = inputs[i]
            air_mass = subspace.air_mass_kg

            # --- sensible heat balance (W) ---
            q = d_temp[i]
            q += params.envelope_ua_w_per_k * (outdoor.temp_c - state.temp_c)
            q += inp.occupants * OCCUPANT_SENSIBLE_W + inp.equipment_w
            q -= inp.panel_heat_w
            m_vent = inp.vent_flow_m3s * AIR_DENSITY
            q += m_vent * AIR_CP * (inp.vent_supply_temp_c - state.temp_c)
            # Supply air displaces room air out through the CO2flap, so
            # the ventilation term above already closes its own mass
            # balance; only infiltration and door openings exchange raw
            # outdoor air.
            infil_flow = (params.infiltration_ach / 3600.0) * subspace.volume_m3
            door_flow = inp.door_open_fraction * params.door_exchange_m3s
            m_exch = (infil_flow + door_flow) * AIR_DENSITY
            q += m_exch * AIR_CP * (outdoor.temp_c - state.temp_c)
            new_temp = state.temp_c + dt * q / params.capacity_j_per_k

            # --- moisture balance (kg water / s) ---
            water_mass = (air_mass * params.moisture_buffer_factor)
            mw = d_w[i] * params.moisture_buffer_factor  # mixing acts on buffer too
            mw += m_vent * (inp.vent_supply_w - state.humidity_ratio)
            mw += m_exch * (outdoor_w - state.humidity_ratio)
            mw += inp.occupants * OCCUPANT_LATENT_KGS
            new_w = state.humidity_ratio + dt * mw / water_mass
            new_w = max(1e-5, new_w)

            # --- CO2 balance (ppm * m^3 / s) ---
            c = d_co2[i]
            c += inp.vent_flow_m3s * (outdoor.co2_ppm - state.co2_ppm)
            c += (infil_flow + door_flow) * (outdoor.co2_ppm - state.co2_ppm)
            c += inp.occupants * OCCUPANT_CO2_M3S * 1e6
            new_co2 = state.co2_ppm + dt * c / subspace.volume_m3
            new_co2 = max(outdoor.co2_ppm * 0.5, new_co2)

            subspace.state = SubspaceState(new_temp, new_w, new_co2)

    # ------------------------------------------------------------------
    def record_condensation(self) -> None:
        """Count a condensation incident (panel surface below dew point).

        The hydronics layer calls this when the mixed-water control ever
        lets the panel surface cross the local dew point; integration
        tests assert it stays at zero.
        """
        self.condensation_events += 1
