"""Process-wide spectral cache and solvers for macro-gap decompositions.

Every macro-stepped gap solves ``x' = A x + r`` in closed form through
an eigendecomposition of the coupling matrix ``A = (B - diag(d)) / s``,
where ``B`` (the symmetric inter-zone coupling pattern) and ``s`` (the
per-row thermal capacity / water mass / air volume scaling) are fixed
for the life of a room and only the diagonal-loss vector ``d`` follows
the actuation pattern.  Steady operation therefore revisits a handful
of distinct ``d`` vectors thousands of times — and before this module,
three call sites each kept (or skipped) their own memo: the scalar
:class:`~repro.physics.room.Room`, the SoA
:class:`~repro.physics.vector.BatchGapSolver` (which decomposed every
gap from scratch) and the lockstep batch lane.

This module is the one shared LRU they all key into.

Cache key contract
------------------
An entry is keyed by ``(system_key, d.tobytes())``:

* ``system_key`` — a content hash of ``B``/``s``'s exact float64 bytes
  plus the solver name (:func:`system_key`).  Content addressing means
  any two rooms with equal topology and parameters share entries
  automatically, across systems and across physics paths, without any
  registration step.
* ``d.tobytes()`` — the **exact** bit pattern of the diagonal-loss
  vector.  No quantisation: a coarser key would serve a decomposition
  computed from a *different* matrix, and bit-exactness of the macro
  path (goldens, discrete hashes, scalar-vs-vector identity) is the
  repo's cardinal invariant.  Reuse comes from the physics — actuator
  commands hold between control updates — not from rounding.

The cached value is the exact ``(a_inv, vals, vecs, vecs_inv)`` tuple
the call site would have computed itself, so a hit is bit-identical to
a miss.  Degenerate systems cache ``None`` (the caller falls back to
per-tick integration either way).  Eviction is LRU under both an entry
count and a byte budget — one dense 1024-zone decomposition is ~125 MB
of complex128, so counting entries alone would not bound memory.

Solvers
-------
``dense`` (the reference oracle) repeats the historical
``inv``/``eig``/``inv`` sequence bit for bit.  ``structured`` exploits
the similarity ``D^{1/2} A D^{-1/2}`` being symmetric (``B`` symmetric,
``s`` positive) to use ``eigh``: real eigenvalues, orthogonal
eigenvectors, a closed-form inverse eigenbasis and no general-matrix
inversions — several times faster at 512+ zones (measured ~5x on the
factorisation), which is what makes the 512/1024-zone grids tractable.
The two produce the same trajectories
only up to roundoff, so ``structured`` is opt-in per scenario
(``physics_solver`` on :class:`~repro.core.config.BubbleZeroConfig`)
and the large-grid scenarios are the only registered users; everything
golden-pinned stays on ``dense``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

SOLVERS = ("dense", "structured")

# LRU budgets.  256 entries covers every steady-state actuation pattern
# of a large sweep batch with room to spare; the byte budget is what
# actually binds on 512/1024-zone grids.
DEFAULT_MAX_ENTRIES = 256
DEFAULT_MAX_BYTES = 768 * 1024 * 1024

Decomposition = Optional[Tuple[np.ndarray, np.ndarray, np.ndarray,
                               np.ndarray]]

_cache: "OrderedDict[Tuple[bytes, bytes], Decomposition]" = OrderedDict()
_cache_bytes = 0
_max_entries = DEFAULT_MAX_ENTRIES
_max_bytes = DEFAULT_MAX_BYTES
_enabled = True
_hits = 0
_misses = 0
_evictions = 0


def system_key(base: np.ndarray, scale: np.ndarray,
               solver: str = "dense") -> bytes:
    """Content hash of one room's state-independent coupling structure.

    Computed once per :class:`~repro.physics.room.Room`; rooms with
    bit-equal ``base``/``scale`` and the same solver share cache
    entries.  Raises on unknown solver names so the config axis is
    validated wherever a room is built.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown physics solver {solver!r}; "
                         f"expected one of {SOLVERS}")
    digest = hashlib.sha256()
    digest.update(solver.encode("ascii"))
    digest.update(repr(base.shape).encode("ascii"))
    digest.update(base.tobytes())
    digest.update(scale.tobytes())
    return digest.digest()


def decompose(base: np.ndarray, scale: np.ndarray, diag: np.ndarray,
              solver: str = "dense") -> Decomposition:
    """Uncached ``(a_inv, vals, vecs, vecs_inv)`` of one gap's system.

    ``A = (base - diag(d)) / scale`` per quantity, stacked ``(3, n, n)``.
    Returns ``None`` when the algebra degenerates — the caller falls
    back to per-tick integration, exactly as the historical in-line
    code did.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown physics solver {solver!r}; "
                         f"expected one of {SOLVERS}")
    n = base.shape[-1]
    mats = base.copy()
    idx = np.arange(n)
    mats[:, idx, idx] -= diag
    mats /= scale[:, :, None]
    if solver == "structured":
        return _structured_decompose(mats, scale)
    try:
        a_inv = np.linalg.inv(mats)
        vals, vecs = np.linalg.eig(mats)
        vecs_inv = np.linalg.inv(vecs)
    except np.linalg.LinAlgError:
        return None
    return (a_inv, vals, vecs, vecs_inv)


def _structured_decompose(mats: np.ndarray,
                          scale: np.ndarray) -> Decomposition:
    """Symmetrised ``eigh`` path for ``A = S^{-1} M`` with ``M`` symmetric.

    With ``D = diag(sqrt(s))``, ``C = D A D^{-1}`` is symmetric, so
    ``eigh(C) = Q L Q^T`` gives ``A = (D^{-1} Q) L (Q^T D)`` with real
    eigenvalues and a closed-form inverse eigenbasis — no complex
    arithmetic and no general-matrix inversions.  Valid for any room
    this repo builds (``base`` is symmetric by construction, the row
    scaling positive); it is gated per scenario anyway because its
    roundoff differs from the dense oracle's.
    """
    sqrt_s = np.sqrt(scale)
    sym = mats * (sqrt_s[:, :, None] / sqrt_s[:, None, :])
    try:
        vals, q = np.linalg.eigh(sym)
    except np.linalg.LinAlgError:
        return None
    if np.any(vals == 0.0):
        return None
    vecs = q / sqrt_s[:, :, None]
    vecs_inv = np.transpose(q, (0, 2, 1)) * sqrt_s[:, None, :]
    a_inv = (vecs / vals[:, None, :]) @ vecs_inv
    return (a_inv, vals, vecs, vecs_inv)


def decomposition(key: bytes, diag: np.ndarray, base: np.ndarray,
                  scale: np.ndarray,
                  solver: str = "dense") -> Decomposition:
    """Shared-cache front end: memoised :func:`decompose`.

    ``key`` is the caller's precomputed :func:`system_key`.  Hits move
    the entry to the LRU tail and return the exact cached arrays (call
    sites never mutate them); misses decompose, then evict from the LRU
    head until both budgets hold.
    """
    global _cache_bytes, _hits, _misses, _evictions
    if not _enabled:
        _misses += 1
        return decompose(base, scale, diag, solver)
    full_key = (key, diag.tobytes())
    try:
        decomp = _cache[full_key]
    except KeyError:
        _misses += 1
    else:
        _hits += 1
        _cache.move_to_end(full_key)
        return decomp
    decomp = decompose(base, scale, diag, solver)
    size = _entry_bytes(decomp)
    while _cache and (len(_cache) >= _max_entries
                      or _cache_bytes + size > _max_bytes):
        _, evicted = _cache.popitem(last=False)
        _cache_bytes -= _entry_bytes(evicted)
        _evictions += 1
    _cache[full_key] = decomp
    _cache_bytes += size
    return decomp


def _entry_bytes(decomp: Decomposition) -> int:
    if decomp is None:
        return 0
    return sum(array.nbytes for array in decomp)


def configure(enabled: Optional[bool] = None,
              max_entries: Optional[int] = None,
              max_bytes: Optional[int] = None) -> Dict[str, object]:
    """Adjust the cache policy; returns the *previous* settings.

    Used by the bench (cache-off comparison runs) and the eviction
    property tests; restore with ``configure(**previous)``.  Shrinking
    the budgets evicts immediately so tests can force churn
    deterministically.
    """
    global _enabled, _max_entries, _max_bytes, _cache_bytes, _evictions
    previous = {"enabled": _enabled, "max_entries": _max_entries,
                "max_bytes": _max_bytes}
    if enabled is not None:
        _enabled = bool(enabled)
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        _max_entries = int(max_entries)
    if max_bytes is not None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        _max_bytes = int(max_bytes)
    while _cache and (len(_cache) > _max_entries
                      or _cache_bytes > _max_bytes):
        _, evicted = _cache.popitem(last=False)
        _cache_bytes -= _entry_bytes(evicted)
        _evictions += 1
    return previous


def cache_clear() -> None:
    """Drop all entries and reset the counters (cold-start benches)."""
    global _cache_bytes, _hits, _misses, _evictions
    _cache.clear()
    _cache_bytes = 0
    _hits = 0
    _misses = 0
    _evictions = 0


def cache_stats() -> Dict[str, float]:
    """hits/misses/evictions/entries/bytes plus a derived hit rate.

    Process-global, like the psychrometrics cache stats next to it in
    ``health.json`` — the cache is shared by every system in the
    process, so the stats describe the process, not one run.
    """
    lookups = _hits + _misses
    return {
        "hits": _hits,
        "misses": _misses,
        "evictions": _evictions,
        "entries": len(_cache),
        "bytes": _cache_bytes,
        "hit_rate": (_hits / lookups) if lookups else 0.0,
    }
