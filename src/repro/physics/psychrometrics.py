"""Psychrometric relations used throughout BubbleZERO.

The paper computes the dew point with the Magnus approximation

    T_dew(T, H) = a * [ln(H/100) + bT/(a+T)] / [b - ln(H/100) - bT/(a+T)]

with a = 243.12 and b = 17.62 (paper §III-B).  We implement exactly that
formula plus its inverse and the standard moist-air relations (saturation
vapour pressure, humidity ratio, enthalpy) the airbox coil model and the
COP accounting need.

All temperatures are in degrees Celsius unless a name says otherwise;
relative humidity is in percent (0–100]; pressures in Pa; humidity ratio
in kg water vapour per kg dry air.

The transcendental relations (anything with an ``exp``/``log``) are
memoized behind quantised LRU caches: inputs are rounded to 12 decimal
places to form the cache key and the result is computed *from the
rounded key*, so a given return value depends only on the key, never on
cache state or call order — runs stay deterministic.  The rounding
perturbs inputs by at most 5e-13, far below sensor quantisation (0.01)
and the 1e-9 equivalence tolerance asserted in
``tests/test_perf_equivalence.py``.  ``configure_cache(False)`` restores
the exact unrounded path for parity checks.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

# Magnus coefficients, as given in the paper.
MAGNUS_A = 243.12  # degC
MAGNUS_B = 17.62   # dimensionless

# Standard atmospheric pressure (Singapore is at sea level).
ATM_PRESSURE = 101325.0  # Pa

# Specific heats and latent heat for moist-air enthalpy (J/kg/K, J/kg).
CP_DRY_AIR = 1006.0
CP_WATER_VAPOR = 1860.0
LATENT_HEAT_VAPORIZATION = 2.501e6

# Ratio of molecular weights (water / dry air).
EPSILON = 0.62198

_MIN_RH = 1e-6   # RH of exactly 0 is outside the Magnus formula's domain

# Quantised-key memoization (see module docstring).  12 decimals keeps
# the key perturbation ~5e-13 while collapsing the near-identical inputs
# the control boards produce (sensor readings quantised at 0.01).
_CACHE_ENABLED = True
_KEY_DECIMALS = 12
_CACHE_SIZE = 4096


class PsychrometricsError(ValueError):
    """Raised for physically meaningless inputs (e.g. RH > 100%)."""


def configure_cache(enabled: bool) -> None:
    """Enable or disable the quantised memoization layer.

    Disabling routes every call through the exact, unrounded formulas —
    the bit-for-bit parity path the equivalence tests compare against.
    Re-enabling does not clear previously cached entries (they remain
    valid: each maps a rounded key to the value computed from it).
    """
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)


def cache_clear() -> None:
    """Drop all memoized entries (useful for benchmarking cold starts)."""
    for fn in (_dew_point_cached,
               _humidity_ratio_cached, _humidity_ratio_from_dew_point_cached,
               _dew_point_from_humidity_ratio_cached,
               _relative_humidity_from_ratio_cached,
               _relative_humidity_from_dew_point_cached):
        fn.cache_clear()


def cache_stats() -> dict:
    """Like :func:`cache_info`, with a derived ``hit_rate`` per relation.

    ``hit_rate`` is hits / (hits + misses), or 0.0 before any lookup —
    the number the benchmark harness records so cache regressions show
    up in BENCH comparisons.
    """
    stats = {}
    for name, info in cache_info().items():
        lookups = info["hits"] + info["misses"]
        stats[name] = dict(info)
        stats[name]["hit_rate"] = (info["hits"] / lookups if lookups
                                   else 0.0)
    return stats


def cache_info() -> dict:
    """Hit/miss statistics of every memoized relation, keyed by name."""
    return {
        "dew_point": _dew_point_cached.cache_info()._asdict(),
        "humidity_ratio": _humidity_ratio_cached.cache_info()._asdict(),
        "humidity_ratio_from_dew_point":
            _humidity_ratio_from_dew_point_cached.cache_info()._asdict(),
        "dew_point_from_humidity_ratio":
            _dew_point_from_humidity_ratio_cached.cache_info()._asdict(),
        "relative_humidity_from_ratio":
            _relative_humidity_from_ratio_cached.cache_info()._asdict(),
        "relative_humidity_from_dew_point":
            _relative_humidity_from_dew_point_cached.cache_info()._asdict(),
    }


def _gamma(temp_c: float, rh_percent: float) -> float:
    """Magnus auxiliary term ln(H/100) + bT/(a+T)."""
    if rh_percent <= 0:
        raise PsychrometricsError(f"relative humidity must be > 0, got {rh_percent}")
    if rh_percent > 100.0 + 1e-9:
        raise PsychrometricsError(f"relative humidity must be <= 100, got {rh_percent}")
    if temp_c <= -MAGNUS_A:
        raise PsychrometricsError(
            f"temperature {temp_c} degC outside Magnus formula domain")
    rh = min(rh_percent, 100.0)
    return math.log(rh / 100.0) + (MAGNUS_B * temp_c) / (MAGNUS_A + temp_c)


def _dew_point_exact(temp_c: float, rh_percent: float) -> float:
    gamma = _gamma(temp_c, rh_percent)
    return MAGNUS_A * gamma / (MAGNUS_B - gamma)


_dew_point_cached = lru_cache(maxsize=_CACHE_SIZE)(_dew_point_exact)


def dew_point(temp_c: float, rh_percent: float) -> float:
    """Dew point of air at ``temp_c`` degC and ``rh_percent`` %RH.

    This is the exact formula from paper §III-B.  At 100 %RH the dew
    point equals the dry-bulb temperature.

    >>> round(dew_point(25.0, 100.0), 6)
    25.0
    >>> dew_point(25.0, 50.0) < 25.0
    True
    """
    if _CACHE_ENABLED:
        return _dew_point_cached(round(temp_c, _KEY_DECIMALS),
                                 round(rh_percent, _KEY_DECIMALS))
    return _dew_point_exact(temp_c, rh_percent)


def _relative_humidity_from_dew_point_exact(temp_c: float,
                                            dew_c: float) -> float:
    if dew_c > temp_c + 1e-9:
        raise PsychrometricsError(
            f"dew point {dew_c} cannot exceed dry-bulb {temp_c}")
    dew_c = min(dew_c, temp_c)
    # gamma_dew = b*Td/(a+Td); solve ln(H/100) = gamma_dew - b*T/(a+T)
    gamma_dew = MAGNUS_B * dew_c / (MAGNUS_A + dew_c)
    log_h = gamma_dew - (MAGNUS_B * temp_c) / (MAGNUS_A + temp_c)
    rh = 100.0 * math.exp(log_h)
    return max(_MIN_RH, min(rh, 100.0))


_relative_humidity_from_dew_point_cached = (
    lru_cache(maxsize=_CACHE_SIZE)(_relative_humidity_from_dew_point_exact))


def relative_humidity_from_dew_point(temp_c: float, dew_c: float) -> float:
    """Invert :func:`dew_point`: %RH such that dew_point(T, RH) == dew_c.

    >>> rh = relative_humidity_from_dew_point(25.0, 18.0)
    >>> round(dew_point(25.0, rh), 6)
    18.0
    """
    if _CACHE_ENABLED:
        return _relative_humidity_from_dew_point_cached(
            round(temp_c, _KEY_DECIMALS), round(dew_c, _KEY_DECIMALS))
    return _relative_humidity_from_dew_point_exact(temp_c, dew_c)


def _saturation_vapor_pressure_exact(temp_c: float) -> float:
    if temp_c <= -MAGNUS_A:
        raise PsychrometricsError(
            f"temperature {temp_c} degC outside Magnus formula domain")
    return 611.2 * math.exp(MAGNUS_B * temp_c / (MAGNUS_A + temp_c))


def saturation_vapor_pressure(temp_c: float) -> float:
    """Saturation vapour pressure over liquid water, Pa (Magnus form).

    Uses the same (a, b) coefficients as the paper's dew-point formula so
    the two are mutually consistent: 611.2 * exp(bT / (a+T)).

    Deliberately *not* memoized: every hot caller reaches it through a
    relation that is itself memoized (``humidity_ratio``) or through
    one-off analysis code, so its own LRU layer recorded zero hits in
    the BENCH_3 profile and only paid dict overhead.  The key
    quantisation is kept so dropping the cache did not move a single
    bit (the memo never changed values, only recall).
    """
    if _CACHE_ENABLED:
        return _saturation_vapor_pressure_exact(round(temp_c, _KEY_DECIMALS))
    return _saturation_vapor_pressure_exact(temp_c)


def vapor_pressure(temp_c: float, rh_percent: float) -> float:
    """Partial pressure of water vapour, Pa."""
    if rh_percent < 0 or rh_percent > 100.0 + 1e-9:
        raise PsychrometricsError(f"relative humidity out of range: {rh_percent}")
    return saturation_vapor_pressure(temp_c) * min(rh_percent, 100.0) / 100.0


def _humidity_ratio_exact(temp_c: float, rh_percent: float,
                          pressure_pa: float = ATM_PRESSURE) -> float:
    p_vap = vapor_pressure(temp_c, rh_percent)
    if p_vap >= pressure_pa:
        raise PsychrometricsError("vapour pressure exceeds total pressure")
    return EPSILON * p_vap / (pressure_pa - p_vap)


_humidity_ratio_cached = lru_cache(maxsize=_CACHE_SIZE)(_humidity_ratio_exact)


def humidity_ratio(temp_c: float, rh_percent: float,
                   pressure_pa: float = ATM_PRESSURE) -> float:
    """Humidity ratio w (kg vapour / kg dry air) at T, RH."""
    if _CACHE_ENABLED:
        return _humidity_ratio_cached(round(temp_c, _KEY_DECIMALS),
                                      round(rh_percent, _KEY_DECIMALS),
                                      pressure_pa)
    return _humidity_ratio_exact(temp_c, rh_percent, pressure_pa)


def _humidity_ratio_from_dew_point_exact(
        dew_c: float, pressure_pa: float = ATM_PRESSURE) -> float:
    p_vap = _saturation_vapor_pressure_exact(dew_c)
    if p_vap >= pressure_pa:
        raise PsychrometricsError("vapour pressure exceeds total pressure")
    return EPSILON * p_vap / (pressure_pa - p_vap)


_humidity_ratio_from_dew_point_cached = (
    lru_cache(maxsize=_CACHE_SIZE)(_humidity_ratio_from_dew_point_exact))


def humidity_ratio_from_dew_point(dew_c: float,
                                  pressure_pa: float = ATM_PRESSURE) -> float:
    """Humidity ratio of air whose dew point is ``dew_c``.

    The dew point uniquely determines the vapour partial pressure (it is
    the temperature at which that pressure saturates), hence w.
    """
    if _CACHE_ENABLED:
        return _humidity_ratio_from_dew_point_cached(
            round(dew_c, _KEY_DECIMALS), pressure_pa)
    return _humidity_ratio_from_dew_point_exact(dew_c, pressure_pa)


def _dew_point_from_humidity_ratio_exact(
        w: float, pressure_pa: float = ATM_PRESSURE) -> float:
    if w <= 0:
        raise PsychrometricsError(f"humidity ratio must be positive, got {w}")
    p_vap = pressure_pa * w / (EPSILON + w)
    # Invert p = 611.2 * exp(b*T/(a+T))  =>  T = a*ln(p/611.2)/(b - ln(p/611.2))
    log_ratio = math.log(p_vap / 611.2)
    if log_ratio >= MAGNUS_B:
        raise PsychrometricsError(f"humidity ratio {w} out of Magnus domain")
    return MAGNUS_A * log_ratio / (MAGNUS_B - log_ratio)


_dew_point_from_humidity_ratio_cached = (
    lru_cache(maxsize=_CACHE_SIZE)(_dew_point_from_humidity_ratio_exact))


def dew_point_from_humidity_ratio(w: float,
                                  pressure_pa: float = ATM_PRESSURE) -> float:
    """Invert :func:`humidity_ratio_from_dew_point`.

    >>> w = humidity_ratio_from_dew_point(18.0)
    >>> round(dew_point_from_humidity_ratio(w), 6)
    18.0
    """
    if _CACHE_ENABLED:
        # Humidity ratios sit around 0.02, so 12 decimals is a relative
        # quantisation of ~5e-11 — still far below the 1e-9 tolerance.
        return _dew_point_from_humidity_ratio_cached(
            round(w, _KEY_DECIMALS + 2), pressure_pa)
    return _dew_point_from_humidity_ratio_exact(w, pressure_pa)


def _relative_humidity_from_ratio_exact(
        temp_c: float, w: float,
        pressure_pa: float = ATM_PRESSURE) -> float:
    if w < 0:
        raise PsychrometricsError(f"humidity ratio must be >= 0, got {w}")
    if w == 0:
        return _MIN_RH
    p_vap = pressure_pa * w / (EPSILON + w)
    rh = 100.0 * p_vap / _saturation_vapor_pressure_exact(temp_c)
    return max(_MIN_RH, min(rh, 100.0))


_relative_humidity_from_ratio_cached = (
    lru_cache(maxsize=_CACHE_SIZE)(_relative_humidity_from_ratio_exact))


def relative_humidity_from_ratio(temp_c: float, w: float,
                                 pressure_pa: float = ATM_PRESSURE) -> float:
    """%RH of air at ``temp_c`` with humidity ratio ``w``."""
    if _CACHE_ENABLED:
        return _relative_humidity_from_ratio_cached(
            round(temp_c, _KEY_DECIMALS), round(w, _KEY_DECIMALS + 2),
            pressure_pa)
    return _relative_humidity_from_ratio_exact(temp_c, w, pressure_pa)


def moist_air_enthalpy(temp_c: float, w: float) -> float:
    """Specific enthalpy of moist air, J per kg of dry air.

    h = cp_a * T + w * (L + cp_v * T), the standard psychrometric form
    with the 0 degC dry-air reference.
    """
    if w < 0:
        raise PsychrometricsError(f"humidity ratio must be >= 0, got {w}")
    return CP_DRY_AIR * temp_c + w * (LATENT_HEAT_VAPORIZATION
                                      + CP_WATER_VAPOR * temp_c)


def condensation_occurs(surface_temp_c: float, air_temp_c: float,
                        air_rh_percent: float) -> bool:
    """True when a surface at ``surface_temp_c`` would condense moisture
    out of air at the given state — the central hazard the radiant
    cooling module must avoid (paper §III-B)."""
    return surface_temp_c < dew_point(air_temp_c, air_rh_percent)


# ---------------------------------------------------------------------------
# Array-accepting variants (vectorized physics / lockstep batch lane)
# ---------------------------------------------------------------------------
# These evaluate the exact formulas elementwise with numpy ufuncs.  They
# intentionally do NOT reproduce the scalar layer's memo-key rounding:
# np.round and Python's round() disagree in the last ulp for some values
# (see DESIGN.md §11), so emulating the quantisation would *add*
# divergence sources, not remove them.  Consumers that need bit-for-bit
# agreement with the scalar path (the per-zone SoA kernel) keep calling
# the scalar functions; consumers that accept ~1e-12 relative divergence
# (the `[batch, zone]` lockstep lane, analysis sweeps) use these.

def saturation_vapor_pressure_array(temp_c: np.ndarray) -> np.ndarray:
    """Elementwise :func:`saturation_vapor_pressure` (exact, unrounded)."""
    t = np.asarray(temp_c, dtype=np.float64)
    return 611.2 * np.exp(MAGNUS_B * t / (MAGNUS_A + t))


def dew_point_array(temp_c: np.ndarray,
                    rh_percent: np.ndarray) -> np.ndarray:
    """Elementwise Magnus dew point; RH is clipped into (0, 100]."""
    t = np.asarray(temp_c, dtype=np.float64)
    rh = np.clip(np.asarray(rh_percent, dtype=np.float64), _MIN_RH, 100.0)
    gamma = np.log(rh / 100.0) + (MAGNUS_B * t) / (MAGNUS_A + t)
    return MAGNUS_A * gamma / (MAGNUS_B - gamma)


def humidity_ratio_from_dew_point_array(
        dew_c: np.ndarray, pressure_pa: float = ATM_PRESSURE) -> np.ndarray:
    """Elementwise :func:`humidity_ratio_from_dew_point`."""
    p_vap = saturation_vapor_pressure_array(dew_c)
    return EPSILON * p_vap / (pressure_pa - p_vap)


def dew_point_from_humidity_ratio_array(
        w: np.ndarray, pressure_pa: float = ATM_PRESSURE) -> np.ndarray:
    """Elementwise :func:`dew_point_from_humidity_ratio` (w must be > 0)."""
    w = np.asarray(w, dtype=np.float64)
    p_vap = pressure_pa * w / (EPSILON + w)
    log_ratio = np.log(p_vap / 611.2)
    return MAGNUS_A * log_ratio / (MAGNUS_B - log_ratio)


def relative_humidity_from_ratio_array(
        temp_c: np.ndarray, w: np.ndarray,
        pressure_pa: float = ATM_PRESSURE) -> np.ndarray:
    """Elementwise :func:`relative_humidity_from_ratio`."""
    w = np.asarray(w, dtype=np.float64)
    p_vap = pressure_pa * w / (EPSILON + w)
    rh = 100.0 * p_vap / saturation_vapor_pressure_array(temp_c)
    return np.clip(rh, _MIN_RH, 100.0)


def moist_air_enthalpy_array(temp_c: np.ndarray,
                             w: np.ndarray) -> np.ndarray:
    """Elementwise :func:`moist_air_enthalpy`."""
    t = np.asarray(temp_c, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    return CP_DRY_AIR * t + w * (LATENT_HEAT_VAPORIZATION
                                 + CP_WATER_VAPOR * t)
