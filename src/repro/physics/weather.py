"""Outdoor boundary conditions: tropical Singapore weather.

The paper's experiments ran against an outdoor state of 28.9 degC dry
bulb and 27.4 degC dew point.  ``ConstantWeather`` pins exactly that
operating point; ``TropicalWeather`` adds a gentle diurnal cycle plus
stochastic fluctuation for the longer example scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.physics.psychrometrics import (
    dew_point_from_humidity_ratio,
    humidity_ratio_from_dew_point,
)

OUTDOOR_CO2_PPM = 400.0


@dataclass(frozen=True)
class OutdoorState:
    """Instantaneous outdoor air condition."""

    temp_c: float
    dew_point_c: float
    co2_ppm: float = OUTDOOR_CO2_PPM

    @cached_property
    def humidity_ratio(self) -> float:
        """kg vapour per kg dry air implied by the dew point.

        Cached per instance (``cached_property`` writes straight into
        ``__dict__``, bypassing the frozen ``__setattr__``): the plant
        reads it several times per physics step and ``ConstantWeather``
        hands out one shared instance for the entire run.
        """
        return humidity_ratio_from_dew_point(self.dew_point_c)


class WeatherModel:
    """Interface: map simulation time (s) to an :class:`OutdoorState`."""

    def state_at(self, time_s: float) -> OutdoorState:
        raise NotImplementedError


class ConstantWeather(WeatherModel):
    """Fixed outdoor condition — the paper's experimental afternoon."""

    def __init__(self, temp_c: float = 28.9, dew_point_c: float = 27.4,
                 co2_ppm: float = OUTDOOR_CO2_PPM) -> None:
        if dew_point_c > temp_c:
            raise ValueError(
                f"outdoor dew point {dew_point_c} exceeds dry bulb {temp_c}")
        self._state = OutdoorState(temp_c, dew_point_c, co2_ppm)

    def state_at(self, time_s: float) -> OutdoorState:
        return self._state


class TropicalWeather(WeatherModel):
    """Diurnal tropical climate: warm, humid, small daily swing.

    Temperature follows a sinusoid peaking mid-afternoon (~15:00); the
    dew point is nearly flat (tropical moisture is persistent) with a
    slight dip at the temperature peak.  Optional band-limited noise is
    deterministic in ``seed``.
    """

    def __init__(self, mean_temp_c: float = 28.0, swing_c: float = 2.5,
                 mean_dew_c: float = 25.5, dew_swing_c: float = 0.8,
                 peak_hour: float = 15.0, noise_c: float = 0.15,
                 seed: int = 7) -> None:
        if mean_dew_c > mean_temp_c:
            raise ValueError("mean dew point cannot exceed mean temperature")
        self.mean_temp_c = mean_temp_c
        self.swing_c = swing_c
        self.mean_dew_c = mean_dew_c
        self.dew_swing_c = dew_swing_c
        self.peak_hour = peak_hour
        self.noise_c = noise_c
        # Precompute a day's worth of smooth noise on a 5-minute grid.
        rng = np.random.default_rng(seed)
        raw = rng.normal(0.0, 1.0, 289)
        kernel = np.ones(7) / 7.0
        self._noise = np.convolve(raw, kernel, mode="same")
        # Last-call memo: the plant and several sensors ask for the
        # state at the same instant within one physics step.
        self._last_time: float | None = None
        self._last_state: OutdoorState | None = None

    def _noise_at(self, time_s: float) -> float:
        idx = int((time_s % 86400.0) / 300.0) % len(self._noise)
        return float(self._noise[idx]) * self.noise_c

    def state_at(self, time_s: float) -> OutdoorState:
        if time_s == self._last_time:
            return self._last_state
        hour = (time_s % 86400.0) / 3600.0
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        temp = self.mean_temp_c + self.swing_c * math.cos(phase)
        dew = self.mean_dew_c - self.dew_swing_c * math.cos(phase)
        temp += self._noise_at(time_s)
        dew = min(dew, temp - 0.1)
        state = OutdoorState(temp, dew)
        self._last_time = time_s
        self._last_state = state
        return state
